#include "core/fusion.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tauw::core {

namespace {

/// The scan-vs-streaming tie band: the reference scan accepts any label
/// whose votes are within kTieEps of the maximum, then picks the most
/// recent. The streaming form reproduces both halves from the aggregates.
constexpr double kTieEps = 1e-12;

void require_non_empty(const TimeseriesBuffer& buffer) {
  if (buffer.empty()) {
    throw std::invalid_argument("fusion requires a non-empty buffer");
  }
}

// -- streaming core ----------------------------------------------------------

/// O(k) argmax over the buffer's per-outcome stats with the paper's
/// most-recent tie-break. Equivalence to the scan: the scan walks entries
/// newest-to-oldest and returns the FIRST label whose votes reach
/// best - kTieEps; that label is exactly the one with the greatest
/// last_seen among the labels inside the tie band (a label's first hit in
/// a newest-to-oldest walk is its most recent occurrence).
template <typename VoteFn>
std::size_t stats_vote(const TimeseriesBuffer& buffer, VoteFn votes) {
  const std::span<const OutcomeStat> stats = buffer.outcome_stats();
  double best = -1.0;
  for (const OutcomeStat& s : stats) best = std::max(best, votes(s));
  const OutcomeStat* pick = nullptr;
  for (const OutcomeStat& s : stats) {
    if (votes(s) >= best - kTieEps &&
        (pick == nullptr || s.last_seen > pick->last_seen)) {
      pick = &s;
    }
  }
  return pick->outcome;  // stats are non-empty for non-empty buffers
}

// -- reference (rescan) core -------------------------------------------------

/// Flat vote accumulator for the reference scans. Distinct outcome labels
/// live in a small inline array and only spill to a vector beyond
/// kInlineLabels distinct labels, which a DDM's class count never reaches
/// in practice. Per-label accumulation order, the max over labels, and the
/// tie-break comparison are identical to the original unordered_map
/// implementation, so reference fused outcomes are bit-identical to it.
class VoteAccumulator {
 public:
  void add(std::size_t label, double weight) {
    if (double* v = find(label)) {
      *v += weight;
    } else if (inline_count_ < kInlineLabels) {
      inline_[inline_count_++] = {label, weight};
    } else {
      overflow_.emplace_back(label, weight);
    }
  }

  /// Accumulated weight for `label` (callers only query voted labels).
  double votes(std::size_t label) const {
    const double* v = const_cast<VoteAccumulator*>(this)->find(label);
    return v ? *v : 0.0;
  }

  double max_votes() const {
    double best = -1.0;
    for (std::size_t i = 0; i < inline_count_; ++i) {
      best = std::max(best, inline_[i].second);
    }
    for (const auto& [label, v] : overflow_) best = std::max(best, v);
    return best;
  }

 private:
  static constexpr std::size_t kInlineLabels = 64;

  double* find(std::size_t label) {
    for (std::size_t i = 0; i < inline_count_; ++i) {
      if (inline_[i].first == label) return &inline_[i].second;
    }
    for (auto& [l, v] : overflow_) {
      if (l == label) return &v;
    }
    return nullptr;
  }

  std::array<std::pair<std::size_t, double>, kInlineLabels> inline_;
  std::size_t inline_count_ = 0;
  std::vector<std::pair<std::size_t, double>> overflow_;
};

// Shared weighted-vote core: accumulates `weight(j)` per outcome and applies
// the paper's tie-break (most recent among argmax classes).
template <typename WeightFn>
std::size_t weighted_vote(const TimeseriesBuffer& buffer, WeightFn weight) {
  VoteAccumulator votes;
  for (std::size_t j = 0; j < buffer.length(); ++j) {
    votes.add(buffer.entry(j).outcome, weight(j));
  }
  const double best = votes.max_votes();
  // Most recent momentaneous prediction among the tied classes.
  for (std::size_t j = buffer.length(); j-- > 0;) {
    const std::size_t label = buffer.entry(j).outcome;
    if (votes.votes(label) >= best - kTieEps) return label;
  }
  return buffer.latest().outcome;  // unreachable for non-empty buffers
}

}  // namespace

std::size_t MajorityVoteFusion::fuse(const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  // Integer counts: exact, so streaming == reference in all cases.
  return stats_vote(buffer, [](const OutcomeStat& s) {
    return static_cast<double>(s.count);
  });
}

std::size_t MajorityVoteFusion::fuse_reference(
    const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  return weighted_vote(buffer, [](std::size_t) { return 1.0; });
}

std::size_t CertaintyWeightedFusion::fuse(
    const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  return stats_vote(buffer,
                    [](const OutcomeStat& s) { return s.certainty_sum; });
}

std::size_t CertaintyWeightedFusion::fuse_reference(
    const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  return weighted_vote(buffer, [&buffer](std::size_t j) {
    return 1.0 - buffer.entry(j).uncertainty;
  });
}

RecencyWeightedFusion::RecencyWeightedFusion(double lambda) : lambda_(lambda) {
  if (!(lambda > 0.0) || !(lambda <= 1.0)) {
    throw std::invalid_argument("lambda must be in (0,1]");
  }
}

std::size_t RecencyWeightedFusion::fuse(const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  if (buffer.decay_lambda() == lambda_) {
    // The buffer maintains decayed votes for exactly this lambda.
    return stats_vote(buffer,
                      [](const OutcomeStat& s) { return s.decayed_votes; });
  }
  // Foreign buffer (no decay plane, or a different rule's lambda): the
  // aggregates cannot answer, so scan. Session buffers the engine
  // configures via streaming_decay() never take this path.
  return fuse_reference(buffer);
}

std::size_t RecencyWeightedFusion::fuse_reference(
    const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  const std::size_t length = buffer.length();
  // Weight entry j by lambda^(age of j), computed newest-to-oldest by
  // repeated multiplication exactly as before (pow() would not be
  // bit-identical). Stack buffer for bounded buffers; heap only for series
  // longer than kInlineWeights.
  constexpr std::size_t kInlineWeights = 128;
  std::array<double, kInlineWeights> inline_weights;
  std::vector<double> heap_weights;
  double* weights = inline_weights.data();
  if (length > kInlineWeights) {
    heap_weights.resize(length);
    weights = heap_weights.data();
  }
  double w = 1.0;
  for (std::size_t age = 0; age < length; ++age) {
    weights[length - 1 - age] = w;
    w *= lambda_;
  }
  return weighted_vote(buffer,
                       [weights](std::size_t j) { return weights[j]; });
}

std::size_t LatestOutcomeFusion::fuse(const TimeseriesBuffer& buffer) const {
  require_non_empty(buffer);
  return buffer.latest().outcome;
}

}  // namespace tauw::core
