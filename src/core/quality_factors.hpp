#pragma once
// Stateless input-quality factors (QF).
//
// The quality model of the uncertainty wrapper (Fig. 1 of the paper) turns
// raw runtime inputs - sensor readings such as a rain gauge, and properties
// of the camera frame such as the apparent sign size - into a quality-factor
// vector consumed by the quality impact model. These factors are *stateless*:
// they depend only on the current timestep.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "data/timeseries.hpp"

namespace tauw::core {

/// Extracts the stateless quality-factor vector from one frame record.
///
/// Layout: the nine observed deficit intensities in canonical order followed
/// by the observed apparent sign size normalized by the frame edge. The
/// extractor is a value type so wrappers can be copied freely.
class QualityFactorExtractor {
 public:
  /// `frame_edge_px` normalizes the apparent-size factor (default matches
  /// the renderer's frame size).
  explicit QualityFactorExtractor(double frame_edge_px = 28.0);

  std::size_t num_factors() const noexcept;
  const std::vector<std::string>& names() const noexcept { return names_; }

  /// Extracts the QF vector of `frame`.
  std::vector<double> extract(const data::FrameRecord& frame) const;

  /// Extraction into a preallocated buffer of size num_factors().
  void extract_into(const data::FrameRecord& frame,
                    std::span<double> out) const;

 private:
  double frame_edge_px_;
  std::vector<std::string> names_;
};

}  // namespace tauw::core
