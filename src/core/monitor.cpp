#include "core/monitor.hpp"

#include <stdexcept>

namespace tauw::core {

RuntimeMonitor::RuntimeMonitor(const MonitorConfig& config) : config_(config) {
  if (!(config.uncertainty_threshold >= 0.0) ||
      !(config.uncertainty_threshold <= 1.0)) {
    throw std::invalid_argument("monitor threshold must be in [0,1]");
  }
  if (!(config.reacceptance_factor > 0.0) ||
      config.reacceptance_factor > 1.0) {
    throw std::invalid_argument("reacceptance factor must be in (0,1]");
  }
}

MonitorDecision RuntimeMonitor::decide(double uncertainty) {
  if (!(uncertainty >= 0.0) || !(uncertainty <= 1.0)) {
    throw std::invalid_argument("uncertainty must be in [0,1]");
  }
  // reacceptance_factor == 1.0 disables hysteresis: re-acceptance must then
  // use the exact threshold with the same strict `<` as a normal decision.
  // Guarding the multiplication (instead of multiplying by 1.0) keeps that
  // guarantee exact even when `threshold * 1.0` would round.
  const double bound = in_fallback_ && config_.reacceptance_factor < 1.0
                           ? config_.uncertainty_threshold *
                                 config_.reacceptance_factor
                           : config_.uncertainty_threshold;
  ++stats_.decisions;
  if (uncertainty < bound) {
    ++stats_.accepted;
    in_fallback_ = false;
    return MonitorDecision::kAccept;
  }
  ++stats_.fallbacks;
  in_fallback_ = true;
  return MonitorDecision::kFallback;
}

void RuntimeMonitor::report_outcome(MonitorDecision decision,
                                    bool failure) noexcept {
  if (decision == MonitorDecision::kAccept && failure) {
    ++stats_.accepted_failures;
  }
}

MonitorDecision RuntimeMonitor::decide_and_report(double uncertainty,
                                                  bool failure) {
  const MonitorDecision decision = decide(uncertainty);
  report_outcome(decision, failure);
  return decision;
}

void RuntimeMonitor::reset() noexcept {
  stats_ = MonitorStats{};
  in_fallback_ = false;
}

}  // namespace tauw::core
