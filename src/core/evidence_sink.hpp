#pragma once
// Evidence sink: the engine-side half of the online calibration plane.
//
// The per-leaf Clopper-Pearson bounds of a deployed QIM are only dependable
// while field conditions still match the calibration data; keeping them
// honest requires a stream of (quality factors, observed outcome) evidence
// from serving traffic. The Engine collects that evidence at the source -
// when ground truth is fed back via report_truth() it emits one
// EvidenceObservation per attributable step into an attached EvidenceSink.
//
// The interface lives in core (not calib/) so the Engine never depends on
// the calibration plane: calib::EvidenceStore implements it, tests can plug
// in trivial recorders, and engines without a sink pay a single null check
// per ground-truth report.

#include <cstdint>
#include <span>

namespace tauw::core {

/// One unit of calibration evidence: the feature rows of the step the
/// ground truth refers to, the observed failure indicators, and the model
/// generation that produced the step (so recalibration can window evidence
/// to the generations it trusts). The spans alias engine-internal storage
/// and are only valid for the duration of the record() call - sinks copy
/// what they keep.
struct EvidenceObservation {
  /// Stateless quality factors of the step (QF-extractor order).
  std::span<const double> stateless_qfs;
  /// taQIM feature row ([stateless QFs, taQFs]); empty when the engine
  /// serves no taQIM.
  std::span<const double> ta_features;
  /// Did the isolated (per-frame) outcome o_i mismatch the ground truth?
  /// Labels the stateless-QIM evidence row.
  bool isolated_failure = false;
  /// Did the fused outcome o_i^(if) mismatch the ground truth? Labels the
  /// taQIM evidence row (the taUW predicts fused-outcome failure).
  bool fused_failure = false;
  /// The model generation (Engine::swap_models) the step was served under.
  std::uint64_t model_generation = 0;
  /// The session the evidence belongs to.
  std::uint64_t session = 0;
};

/// Receives evidence observations from an Engine. record() is called under
/// the reporting session's shard mutex - one call per shard at a time, but
/// different shards call concurrently, so implementations shard their own
/// state by `shard` (calib::EvidenceStore keeps one ring per engine shard)
/// or lock internally. Must not call back into the engine (the shard lock
/// is held) and must not throw.
class EvidenceSink {
 public:
  virtual ~EvidenceSink() = default;

  /// `shard` is the engine shard the session lives on, in
  /// [0, Engine::num_shards()).
  virtual void record(std::size_t shard,
                      const EvidenceObservation& observation) = 0;
};

}  // namespace tauw::core
