#pragma once
// Uncertainty fusion (UF) baselines from the paper's Section II.
//
// Given the per-step stateless uncertainty estimates u_0..u_i of one series,
// these rules produce a joint uncertainty for the fused outcome:
//   naive:      u = prod u_j    (independence assumption, Eq. 1)
//   opportune:  u = min  u_j    (Eq. 2)
//   worst-case: u = max  u_j    (Eq. 3)

#include <cstddef>
#include <span>
#include <string>

#include "core/timeseries_buffer.hpp"

namespace tauw::core {

enum class UncertaintyFusionRule { kNaive, kOpportune, kWorstCase };

constexpr const char* uf_rule_name(UncertaintyFusionRule rule) {
  switch (rule) {
    case UncertaintyFusionRule::kNaive: return "naive";
    case UncertaintyFusionRule::kOpportune: return "opportune";
    case UncertaintyFusionRule::kWorstCase: return "worst_case";
  }
  return "unknown";
}

/// Applies `rule` to a span of per-step uncertainties; every element must
/// lie in [0, 1]. An empty span fuses to the vacuous bound 1.0: with no
/// evidence about the outcome, the only dependable failure-probability
/// bound is "it may always fail".
double fuse_uncertainties(std::span<const double> uncertainties,
                          UncertaintyFusionRule rule);

/// Convenience overload reading the uncertainties from a timeseries buffer.
/// This is a full-window rescan - kept as the executable oracle the
/// streaming form is fuzz-checked against.
double fuse_uncertainties(const TimeseriesBuffer& buffer,
                          UncertaintyFusionRule rule);

/// Streaming form: O(1) from the buffer's incremental window aggregates
/// (TimeseriesBuffer::uf_aggregates). Equivalence to the rescan oracle:
/// opportune/worst_case are exact always (sliding min/max wedges); naive is
/// bit-identical on add-only windows and at re-anchor epochs (identical
/// chronological log-sum), exact 0.0 whenever any buffered u_j == 0, and
/// within O(window) ulps between anchors of an evicting window. Empty
/// buffers fuse to the vacuous bound 1.0, like the oracle.
double fuse_uncertainties_streaming(const TimeseriesBuffer& buffer,
                                    UncertaintyFusionRule rule);

/// Incremental aggregator maintaining all three fused values in O(1) per
/// step - what a runtime monitor would actually deploy.
///
/// While empty(), all three rules (and get()) return the vacuous bound 1.0
/// - consistent with fuse_uncertainties() on an empty span - so callers
/// need no special case at the start of a series.
class UncertaintyFusionAccumulator {
 public:
  void reset() noexcept;
  void push(double uncertainty);

  bool empty() const noexcept { return count_ == 0; }
  std::size_t count() const noexcept { return count_; }

  double naive() const noexcept;
  double opportune() const noexcept;
  double worst_case() const noexcept;
  double get(UncertaintyFusionRule rule) const;

 private:
  std::size_t count_ = 0;
  double log_product_ = 0.0;  // sum of log(u_j); -inf once any u_j == 0
  double min_ = 1.0;
  double max_ = 0.0;
};

}  // namespace tauw::core
