#include "core/ta_quality_factors.hpp"

#include <stdexcept>

namespace tauw::core {

std::vector<TaqfSet> all_taqf_subsets() {
  std::vector<TaqfSet> out;
  out.reserve(16);
  for (unsigned mask = 0; mask < 16; ++mask) {
    TaqfSet s;
    s.ratio = (mask & 1U) != 0;
    s.length = (mask & 2U) != 0;
    s.size = (mask & 4U) != 0;
    s.certainty = (mask & 8U) != 0;
    out.push_back(s);
  }
  return out;
}

std::string taqf_set_name(const TaqfSet& set) {
  std::string name;
  const auto append = [&name](const char* part) {
    if (!name.empty()) name += "+";
    name += part;
  };
  if (set.ratio) append("ratio");
  if (set.length) append("length");
  if (set.size) append("size");
  if (set.certainty) append("certainty");
  return name.empty() ? "-" : name;
}

TaqfValues compute_taqf(const TimeseriesBuffer& buffer,
                        std::size_t fused_outcome) {
  if (buffer.empty()) {
    throw std::invalid_argument("compute_taqf requires a non-empty buffer");
  }
  // Streaming lookup: the buffer maintains the agreeing count and the
  // agreeing certainty sum per outcome incrementally, so no window scan.
  TaqfValues v;
  const auto n = static_cast<double>(buffer.length());
  const OutcomeStat* stat = buffer.outcome_stat(fused_outcome);
  v.ratio =
      stat == nullptr ? 0.0 : static_cast<double>(stat->count) / n;
  v.length = n;
  v.size = static_cast<double>(buffer.unique_outcomes());
  v.certainty = stat == nullptr ? 0.0 : stat->certainty_sum;
  return v;
}

TaqfValues compute_taqf_reference(const TimeseriesBuffer& buffer,
                                  std::size_t fused_outcome) {
  if (buffer.empty()) {
    throw std::invalid_argument("compute_taqf requires a non-empty buffer");
  }
  TaqfValues v;
  const auto n = static_cast<double>(buffer.length());
  std::size_t agreeing = 0;
  double cum_certainty = 0.0;
  for (const BufferEntry& e : buffer.entries()) {
    if (e.outcome == fused_outcome) {
      ++agreeing;
      // Outcomes disagreeing with the fused outcome contribute certainty 0.
      cum_certainty += 1.0 - e.uncertainty;
    }
  }
  v.ratio = static_cast<double>(agreeing) / n;
  v.length = n;
  v.size = static_cast<double>(buffer.unique_outcomes());
  v.certainty = cum_certainty;
  return v;
}

TaFeatureBuilder::TaFeatureBuilder(std::size_t num_stateless_factors,
                                   TaqfSet set)
    : num_stateless_(num_stateless_factors), set_(set) {}

std::size_t TaFeatureBuilder::dim() const noexcept {
  return num_stateless_ + set_.count();
}

std::vector<std::string> TaFeatureBuilder::names(
    std::span<const std::string> stateless_names) const {
  std::vector<std::string> out;
  out.reserve(dim());
  for (std::size_t i = 0; i < num_stateless_; ++i) {
    out.push_back(i < stateless_names.size() ? stateless_names[i]
                                             : "qf" + std::to_string(i));
  }
  if (set_.ratio) out.emplace_back("taqf1_ratio");
  if (set_.length) out.emplace_back("taqf2_length");
  if (set_.size) out.emplace_back("taqf3_size");
  if (set_.certainty) out.emplace_back("taqf4_certainty");
  return out;
}

void TaFeatureBuilder::build_into(std::span<const double> stateless_factors,
                                  const TimeseriesBuffer& buffer,
                                  std::size_t fused_outcome,
                                  std::span<double> out) const {
  if (stateless_factors.size() != num_stateless_) {
    throw std::invalid_argument("stateless factor count mismatch");
  }
  if (out.size() != dim()) {
    throw std::invalid_argument("ta feature buffer size mismatch");
  }
  std::size_t k = 0;
  for (const double f : stateless_factors) out[k++] = f;
  if (set_.count() > 0) {
    const TaqfValues v = compute_taqf(buffer, fused_outcome);
    if (set_.ratio) out[k++] = v.ratio;
    if (set_.length) out[k++] = v.length;
    if (set_.size) out[k++] = v.size;
    if (set_.certainty) out[k++] = v.certainty;
  }
}

std::vector<double> TaFeatureBuilder::build(
    std::span<const double> stateless_factors, const TimeseriesBuffer& buffer,
    std::size_t fused_outcome) const {
  std::vector<double> out(dim());
  build_into(stateless_factors, buffer, fused_outcome, out);
  return out;
}

}  // namespace tauw::core
