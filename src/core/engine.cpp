#include "core/engine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace tauw::core {

Engine::Engine(EngineComponents components, EngineConfig config)
    : components_(std::move(components)),
      config_(config),
      qf_scratch_(components_.qf_extractor.num_factors()) {
  if (components_.fusion == nullptr) {
    components_.fusion = std::make_shared<MajorityVoteFusion>();
  }
  if (components_.qim != nullptr && components_.qim->fitted() &&
      components_.qim->num_features() !=
          components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine: QIM feature count does not match the QF extractor");
  }
  estimators_ = make_default_estimators(
      components_.taqim, components_.qf_extractor.num_factors(),
      components_.taqfs);
  primary_ = components_.taqim != nullptr
                 ? estimator_index("tauw")
                 : estimator_index("worst_case");
}

std::vector<std::string> Engine::estimator_names() const {
  std::vector<std::string> names;
  names.reserve(estimators_.size());
  for (const auto& estimator : estimators_) names.push_back(estimator->name());
  return names;
}

std::size_t Engine::estimator_index(std::string_view name) const {
  for (std::size_t i = 0; i < estimators_.size(); ++i) {
    if (estimators_[i]->name() == name) return i;
  }
  throw std::invalid_argument("Engine: unknown estimator \"" +
                              std::string(name) + "\"");
}

void Engine::add_estimator(std::shared_ptr<UncertaintyEstimator> estimator) {
  if (estimator == nullptr) {
    throw std::invalid_argument("Engine: null estimator");
  }
  estimators_.push_back(std::move(estimator));
}

SessionId Engine::open_session() {
  const SessionId id = next_auto_id_++;
  create_session(id);  // fresh by construction: ids are never re-issued
  return id;
}

void Engine::validate_external_id(SessionId id) const {
  // Caller-chosen ids must stay out of the auto namespace - except ids
  // this engine itself assigned (re-opening an evicted auto session).
  if ((id & kAutoSessionBit) != 0 && id >= next_auto_id_) {
    throw std::invalid_argument(
        "Engine: caller session ids must be below 2^63 (id " +
        std::to_string(id) + " aliases the auto-assigned namespace)");
  }
}

void Engine::open_session(SessionId id) {
  validate_external_id(id);
  const auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    // Re-opening restarts the series: buffer, UF aggregates, and the
    // monitor's hysteresis mode (it belonged to the previous physical
    // object) are cleared; the monitor's statistics are kept (they belong
    // to the session's stream of decisions, not one series).
    it->second.buffer.clear();
    it->second.uf.reset();
    it->second.monitor.reset_hysteresis();
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  create_session(id);
}

Engine::Session& Engine::create_session(SessionId id) {
  lru_.push_front(id);
  try {
    Session session{TimeseriesBuffer(config_.buffer_capacity),
                    UncertaintyFusionAccumulator{},
                    RuntimeMonitor(config_.monitor), lru_.begin()};
    const auto [it, inserted] = sessions_.emplace(id, std::move(session));
    if (config_.max_sessions > 0 && sessions_.size() > config_.max_sessions) {
      evict_lru(id);
    }
    return it->second;
  } catch (...) {
    // Unwind the LRU entry so a failed emplace cannot leave a ghost id
    // that evict_lru would spin on.
    lru_.pop_front();
    throw;
  }
}

void Engine::evict_lru(SessionId keep) {
  while (sessions_.size() > config_.max_sessions && !lru_.empty()) {
    const SessionId victim = lru_.back();
    if (victim == keep) break;  // never evict the session being touched
    close_session(victim);
  }
}

bool Engine::has_session(SessionId id) const noexcept {
  return sessions_.find(id) != sessions_.end();
}

void Engine::close_session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  retired_ += it->second.monitor.stats();
  lru_.erase(it->second.lru_it);
  sessions_.erase(it);
}

const Engine::Session& Engine::session_at(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("Engine: unknown session " +
                                std::to_string(id));
  }
  return it->second;
}

const RuntimeMonitor& Engine::session_monitor(SessionId id) const {
  return session_at(id).monitor;
}

const TimeseriesBuffer& Engine::session_buffer(SessionId id) const {
  return session_at(id).buffer;
}

Engine::Session& Engine::touch(SessionId id, bool& created) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    validate_external_id(id);
    created = true;
    return create_session(id);
  }
  created = false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second;
}

void Engine::step_common(SessionId id, Session& session,
                         std::span<const double> stateless_qfs,
                         std::size_t outcome, double ddm_confidence,
                         double uncertainty, EngineStepResult& result) {
  session.buffer.push(outcome, uncertainty);
  if (config_.buffer_capacity > 0 &&
      session.buffer.length() == config_.buffer_capacity) {
    // Bounded sessions window the UF aggregates to the buffer contents so
    // every estimator and the fused outcome cover the same evidence (min/
    // max cannot be decremented incrementally; the O(capacity) rebuild
    // keeps per-step cost constant).
    session.uf.reset();
    for (const BufferEntry& entry : session.buffer.entries()) {
      session.uf.push(entry.uncertainty);
    }
  } else {
    session.uf.push(uncertainty);
  }

  result.session = id;
  result.isolated.label = outcome;
  result.isolated.uncertainty = uncertainty;
  result.isolated.ddm_confidence = ddm_confidence;
  result.series_length = session.buffer.length();
  result.fused_label = components_.fusion->fuse(session.buffer);

  EstimationContext context;
  context.stateless_qfs = stateless_qfs;
  context.buffer = &session.buffer;
  context.uf = &session.uf;
  context.isolated_label = outcome;
  context.isolated_uncertainty = uncertainty;
  context.fused_label = result.fused_label;

  result.estimates.resize(estimators_.size());
  for (std::size_t i = 0; i < estimators_.size(); ++i) {
    result.estimates[i] = estimators_[i]->estimate(context);
  }
  result.decision = session.monitor.decide(result.estimates[primary_]);
}

void Engine::step_into(SessionId id, const data::FrameRecord& frame,
                       const sim::SignLocation* location,
                       EngineStepResult& result) {
  if (components_.ddm == nullptr || components_.qim == nullptr) {
    throw std::logic_error(
        "Engine::step requires a DDM and a fitted QIM (replay-only engines "
        "must use step_precomputed)");
  }
  // Run every fallible evaluation before touching session state, so a
  // throwing DDM/QIM leaves no half-created session and evicts nothing.
  components_.qf_extractor.extract_into(frame, qf_scratch_);
  const ml::Prediction prediction = components_.ddm->predict(frame.features);
  double uncertainty = components_.qim->predict(qf_scratch_);
  if (components_.scope.has_value() && location != nullptr) {
    uncertainty = combine_uncertainties(
        uncertainty,
        components_.scope->incompliance_probability(frame, *location));
  }
  bool created = false;
  Session& session = touch(id, created);
  result.new_session = created;
  step_common(id, session, qf_scratch_, prediction.label,
              prediction.confidence, uncertainty, result);
}

EngineStepResult Engine::step(SessionId id, const data::FrameRecord& frame,
                              const sim::SignLocation* location) {
  EngineStepResult result;
  step_into(id, frame, location, result);
  return result;
}

void Engine::step_precomputed_into(SessionId id,
                                   std::span<const double> stateless_qfs,
                                   std::size_t outcome, double uncertainty,
                                   EngineStepResult& result) {
  // Validate before any session mutation: the taUW estimator would only
  // reject a wrong-sized span after the buffer push, leaving a phantom
  // step behind.
  if (stateless_qfs.size() != components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine::step_precomputed: stateless QF count does not match the "
        "QF extractor");
  }
  bool created = false;
  Session& session = touch(id, created);
  result.new_session = created;
  step_common(id, session, stateless_qfs, outcome, 0.0, uncertainty, result);
}

EngineStepResult Engine::step_precomputed(
    SessionId id, std::span<const double> stateless_qfs, std::size_t outcome,
    double uncertainty) {
  EngineStepResult result;
  step_precomputed_into(id, stateless_qfs, outcome, uncertainty, result);
  return result;
}

void Engine::step_batch(std::span<const SessionFrame> frames,
                        std::vector<EngineStepResult>& results) {
  // Validate the whole batch first so a bad entry cannot leave earlier
  // sessions half-stepped (the call is all-or-nothing up to this point).
  for (const SessionFrame& frame : frames) {
    if (frame.frame == nullptr) {
      throw std::invalid_argument("Engine::step_batch: null frame");
    }
    if (!has_session(frame.session)) validate_external_id(frame.session);
  }
  results.resize(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    step_into(frames[i].session, *frames[i].frame, frames[i].location,
              results[i]);
  }
}

void Engine::report_outcome(SessionId id, MonitorDecision decision,
                            bool failure) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    // The session may have been closed or evicted between the decision and
    // the (possibly delayed) ground-truth feedback; count it globally.
    if (decision == MonitorDecision::kAccept && failure) {
      ++retired_.accepted_failures;
    }
    return;
  }
  it->second.monitor.report_outcome(decision, failure);
}

MonitorStats Engine::total_monitor_stats() const noexcept {
  MonitorStats total = retired_;
  for (const auto& [id, session] : sessions_) {
    total += session.monitor.stats();
  }
  return total;
}

}  // namespace tauw::core
