#include "core/engine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "support/affinity.hpp"

namespace tauw::core {

namespace {

/// Per-shard cap on pooled session/LRU nodes and on pooled BatchStates: a
/// one-off spike beyond steady state frees its excess instead of pinning
/// peak memory forever.
constexpr std::size_t kSessionSpareCap = 1024;
constexpr std::size_t kBatchPoolCap = 16;

// splitmix64 finalizer: session ids are often sequential (tracker series,
// auto-assigned ids), so shard selection needs a real mixer - `id %
// num_shards` would put consecutive ids on consecutive shards, which is
// fine for load but terrible for tests that want colliding ids, and it
// couples shard placement to the id-allocation pattern.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Engine::Engine(EngineComponents components, EngineConfig config)
    : components_(std::move(components)), config_(config) {
  if (components_.fusion == nullptr) {
    components_.fusion = std::make_shared<MajorityVoteFusion>();
  }
  if (components_.qim != nullptr && components_.qim->fitted() &&
      components_.qim->num_features() !=
          components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine: QIM feature count does not match the QF extractor");
  }
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.num_threads == 0) config_.num_threads = 1;
  if (components_.taqim != nullptr) {
    ta_builder_.emplace(components_.qf_extractor.num_factors(),
                        components_.taqfs);
  }

  shards_.reserve(config_.num_shards);
  const std::size_t per_shard_budget =
      config_.max_sessions == 0
          ? 0
          : (config_.max_sessions + config_.num_shards - 1) /
                config_.num_shards;
  const auto initial_models = std::make_shared<const ModelSet>(
      ModelSet{components_.qim, components_.taqim, 1});
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->max_sessions = per_shard_budget;
    shard->estimators = make_default_estimators(
        components_.taqim, components_.qf_extractor.num_factors(),
        components_.taqfs);
    shard->qf_scratch.resize(components_.qf_extractor.num_factors());
    shard->models = initial_models;
    shards_.push_back(std::move(shard));
  }
  primary_ = components_.taqim != nullptr ? estimator_index("tauw")
                                          : estimator_index("worst_case");

  group_scratch_.resize(config_.num_shards);
  const std::vector<int> pin_cpus = config_.pin_worker_threads
                                        ? support::available_cpus()
                                        : std::vector<int>{};
  try {
    for (std::size_t t = 1; t < config_.num_threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
      if (!pin_cpus.empty()) {
        // Worker t -> cpus[t % n]: deterministic, and the same placement
        // rule the traffic plane uses for drainers, so a shard's worker and
        // its drainer share a core set (cache residency survives the hop).
        const int cpu = pin_cpus[(t - 1) % pin_cpus.size()];
        if (support::pin_thread(workers_.back(), cpu)) {
          worker_cpus_.push_back(cpu);
        }
      }
    }
  } catch (...) {
    // A failed spawn (e.g. EAGAIN under thread pressure) must join the
    // workers already running: ~Engine() does not run when the
    // constructor unwinds, and destroying a joinable std::thread
    // terminates the process.
    {
      MutexLock lock(pool_mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

Engine::~Engine() {
  {
    MutexLock lock(pool_mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t Engine::shard_of(SessionId id) const noexcept {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(mix64(id) % shards_.size());
}

std::size_t Engine::num_estimators() const {
  const Shard& shard = *shards_.front();
  MutexLock lock(shard.mutex);
  return shard.estimators.size();
}

// The registry readers lock shard 0 (the registries of all shards are
// index-aligned): the annotations surfaced that these used to read
// shard 0's estimator vector with no lock, racing both add_estimator's
// push_back and swap_models' rebind under the shard mutexes.
std::vector<std::string> Engine::estimator_names() const {
  const Shard& shard = *shards_.front();
  MutexLock lock(shard.mutex);
  std::vector<std::string> names;
  names.reserve(shard.estimators.size());
  for (const auto& estimator : shard.estimators) {
    names.push_back(estimator->name());
  }
  return names;
}

std::size_t Engine::estimator_index(std::string_view name) const {
  const Shard& shard = *shards_.front();
  MutexLock lock(shard.mutex);
  for (std::size_t i = 0; i < shard.estimators.size(); ++i) {
    if (shard.estimators[i]->name() == name) return i;
  }
  throw std::invalid_argument("Engine: unknown estimator \"" +
                              std::string(name) + "\"");
}

void Engine::add_estimator(std::shared_ptr<UncertaintyEstimator> estimator) {
  if (estimator == nullptr) {
    throw std::invalid_argument("Engine: null estimator");
  }
  // Clone for shards 1..N-1 first so a non-cloneable estimator leaves the
  // registries untouched (all shards must stay index-aligned).
  std::vector<std::shared_ptr<UncertaintyEstimator>> clones;
  clones.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    std::shared_ptr<UncertaintyEstimator> clone = estimator->clone();
    if (clone == nullptr) {
      throw std::invalid_argument(
          "Engine: estimator \"" + estimator->name() +
          "\" does not support clone(); sharded engines need one instance "
          "per shard");
    }
    clones.push_back(std::move(clone));
  }
  // Bind every instance to its shard's currently published models before
  // installing: an estimator constructed against the initial components
  // would otherwise serve a stale model after swap_models while its
  // results are stamped with the current generation. A throw here (the
  // estimator rejects the served model) leaves the registries untouched.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const ModelSet> models;
    {
      MutexLock lock(shards_[s]->mutex);
      models = shards_[s]->models;
    }
    UncertaintyEstimator& instance = s == 0 ? *estimator : *clones[s - 1];
    instance.rebind_models(models->qim, models->taqim);
  }
  // Install under the shard mutexes: the registries are read by stepping
  // threads (step_common/flush_run) and rebound by swap_models under the
  // same locks, so an unlocked push_back here would race both. (This was
  // the annotations' first concrete find - see the regression test in
  // tests/core_engine_registry_race_test.cpp.)
  {
    Shard& shard = *shards_.front();
    MutexLock lock(shard.mutex);
    shard.estimators.push_back(std::move(estimator));
  }
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mutex);
    shard.estimators.push_back(std::move(clones[s - 1]));
  }
}

SessionId Engine::open_session() {
  const SessionId id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  create_session(shard, id);  // fresh by construction: ids are never re-issued
  return id;
}

void Engine::validate_external_id(SessionId id) const {
  // Caller-chosen ids must stay out of the auto namespace - except ids
  // this engine itself assigned (re-opening an evicted auto session).
  if ((id & kAutoSessionBit) != 0 &&
      id >= next_auto_id_.load(std::memory_order_relaxed)) {
    throw std::invalid_argument(
        "Engine: caller session ids must be below 2^63 (id " +
        std::to_string(id) + " aliases the auto-assigned namespace)");
  }
}

void Engine::open_session(SessionId id) {
  validate_external_id(id);
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it != shard.sessions.end()) {
    // Re-opening restarts the series: buffer, UF aggregates, and the
    // monitor's hysteresis mode (it belonged to the previous physical
    // object) are cleared; the monitor's statistics are kept (they belong
    // to the session's stream of decisions, not one series). The last-step
    // attribution is stale too - truth for the previous series arriving
    // after the restart must not pair with the new series' state (and the
    // taQF rebuild in report_truth needs the buffer the step actually saw).
    it->second.buffer.clear();
    it->second.monitor.reset_hysteresis();
    it->second.has_last_step = false;
    it->second.last_evidence_valid = false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  create_session(shard, id);
}

void Engine::reset_session(Session& session) const {
  // Everything a fresh Session{} would zero, minus the heap buffers: the
  // buffer ring/outcome counts and the last_qfs/last_ta rows keep their
  // capacity (this is what makes open/close churn allocation-free).
  session.buffer.clear();
  // Fresh statistics: close_session_locked already folded the previous
  // owner's stats into the retired aggregate.
  session.monitor = RuntimeMonitor(config_.monitor);
  session.staged_mark = 0;
  session.last_isolated_label = 0;
  session.last_fused_label = 0;
  session.last_decision = MonitorDecision::kAccept;
  session.last_generation = 0;
  session.has_last_step = false;
  session.last_evidence_valid = false;
}

Engine::Session& Engine::create_session(Shard& shard, SessionId id) {
  // LRU node first, recycled from the spare list when possible (splice
  // moves the node, so steady-state churn never touches the heap).
  if (!shard.lru_spares.empty()) {
    shard.lru.splice(shard.lru.begin(), shard.lru_spares,
                     shard.lru_spares.begin());
    shard.lru.front() = id;
  } else {
    shard.lru.push_front(id);
  }
  try {
    SessionMap::iterator it;
    if (!shard.session_spares.empty()) {
      // Recycled map node: rekey, reset the Session's logical state, and
      // re-insert - no allocation (the bucket array only grows when the
      // live count exceeds its previous high water).
      auto node = std::move(shard.session_spares.back());
      shard.session_spares.pop_back();
      node.key() = id;
      reset_session(node.mapped());
      it = shard.sessions.insert(std::move(node)).position;
    } else {
      Session session;
      session.buffer = TimeseriesBuffer(
          config_.buffer_capacity, components_.fusion->streaming_decay());
      session.monitor = RuntimeMonitor(config_.monitor);
      it = shard.sessions.emplace(id, std::move(session)).first;
    }
    it->second.lru_it = shard.lru.begin();
    const std::size_t live_after =
        global_live_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (shard.max_sessions > 0 &&
        shard.sessions.size() > shard.max_sessions + shard.borrowed) {
      // Over budget. Cross-shard pressure balancing: keep the session on a
      // borrowed slot while (a) this shard's borrow allowance has room and
      // (b) the engine-wide live total is within max_sessions - i.e. some
      // other shard's budget is genuinely unused right now. The global
      // check is an atomic read of a counter every shard maintains, so a
      // concurrent burst can at worst DENY a borrow that a stop-the-world
      // view would have granted (the increment above already counted this
      // session), never grant one beyond max_sessions.
      if (shard.borrowed < config_.max_borrowed_sessions &&
          live_after <= config_.max_sessions) {
        ++shard.borrowed;
      } else {
        evict_lru(shard, id);
      }
    }
    return it->second;
  } catch (...) {
    // Unwind the LRU entry so a failed emplace cannot leave a ghost id
    // that evict_lru would spin on.
    shard.lru.pop_front();
    throw;
  }
}

void Engine::evict_lru(Shard& shard, SessionId keep) {
  while (shard.sessions.size() > shard.max_sessions + shard.borrowed &&
         !shard.lru.empty()) {
    const SessionId victim = shard.lru.back();
    if (victim == keep) break;  // never evict the session being touched
    close_session_locked(shard, victim);
  }
}

bool Engine::has_session(SessionId id) const {
  const Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  return shard.sessions.find(id) != shard.sessions.end();
}

std::size_t Engine::session_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->sessions.size();
  }
  return total;
}

void Engine::close_session_locked(Shard& shard, SessionId id) {
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) return;
  shard.retired += it->second.monitor.stats();
  // Park the LRU node and the map node (Session capacities intact) for
  // create_session to reuse; beyond the spare cap they are freed as before.
  if (shard.lru_spares.size() < kSessionSpareCap) {
    shard.lru_spares.splice(shard.lru_spares.begin(), shard.lru,
                            it->second.lru_it);
  } else {
    shard.lru.erase(it->second.lru_it);
  }
  auto node = shard.sessions.extract(it);
  if (shard.session_spares.size() < kSessionSpareCap) {
    shard.session_spares.push_back(std::move(node));
  }
  global_live_.fetch_sub(1, std::memory_order_relaxed);
  // Return borrowed budget as soon as the shard shrinks back: borrowed is
  // exactly the over-budget excess, so cold shards' capacity flows back the
  // moment the hot shard's pressure subsides.
  if (shard.borrowed > 0 &&
      shard.sessions.size() < shard.max_sessions + shard.borrowed) {
    --shard.borrowed;
  }
}

void Engine::close_session(SessionId id) {
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  close_session_locked(shard, id);
}

const Engine::Session& Engine::session_at(const Shard& shard,
                                          SessionId id) const {
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    throw std::invalid_argument("Engine: unknown session " +
                                std::to_string(id));
  }
  return it->second;
}

const RuntimeMonitor& Engine::session_monitor(SessionId id) const {
  const Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  return session_at(shard, id).monitor;
}

const TimeseriesBuffer& Engine::session_buffer(SessionId id) const {
  const Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  return session_at(shard, id).buffer;
}

Engine::Session& Engine::touch(Shard& shard, SessionId id, bool& created) {
  return touch_at(shard, id, shard.sessions.find(id), created);
}

Engine::Session& Engine::touch_at(Shard& shard, SessionId id,
                                  SessionMap::iterator it, bool& created) {
  if (it == shard.sessions.end()) {
    validate_external_id(id);
    created = true;
    return create_session(shard, id);
  }
  created = false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second;
}

EstimationContext Engine::commit_step(Shard& shard, SessionId id,
                                      Session& session,
                                      std::span<const double> stateless_qfs,
                                      std::size_t outcome,
                                      double ddm_confidence,
                                      double uncertainty,
                                      EngineStepResult& result) {
  // One O(1) amortized push: the buffer maintains the windowed UF state and
  // the per-outcome stats incrementally (bounded windows re-anchor at ring
  // wraps), so estimators and fusion read aggregates without any rescan.
  session.buffer.push(outcome, uncertainty);

  result.session = id;
  result.isolated.label = outcome;
  result.isolated.uncertainty = uncertainty;
  result.isolated.ddm_confidence = ddm_confidence;
  result.series_length = session.buffer.length();
  result.fused_label = components_.fusion->fuse(session.buffer);
  result.model_generation = shard.models->generation;

  // Last-step attribution for report_truth: which labels this step emitted
  // and under which generation. Only the stateless QF row is copied here
  // (it lives in per-shard scratch the next step overwrites), and only
  // while an evidence sink is attached; the taQF row is derivable at
  // report time - truth refers to the last step, so the session's buffer
  // still holds exactly that step's state - which keeps the taQF build off
  // the per-step hot path (the taUW estimator already builds it once for
  // prediction).
  session.last_isolated_label = outcome;
  session.last_fused_label = result.fused_label;
  session.last_generation = shard.models->generation;
  session.has_last_step = true;
  session.last_evidence_valid = shard.sink != nullptr;
  if (session.last_evidence_valid) {
    session.last_qfs.assign(stateless_qfs.begin(), stateless_qfs.end());
  }

  EstimationContext context;
  context.stateless_qfs = stateless_qfs;
  context.buffer = &session.buffer;
  context.isolated_label = outcome;
  context.isolated_uncertainty = uncertainty;
  context.fused_label = result.fused_label;
  return context;
}

void Engine::step_common(Shard& shard, SessionId id, Session& session,
                         std::span<const double> stateless_qfs,
                         std::size_t outcome, double ddm_confidence,
                         double uncertainty, EngineStepResult& result) {
  const EstimationContext context =
      commit_step(shard, id, session, stateless_qfs, outcome, ddm_confidence,
                  uncertainty, result);
  result.estimates.resize(shard.estimators.size());
  for (std::size_t i = 0; i < shard.estimators.size(); ++i) {
    result.estimates[i] = shard.estimators[i]->estimate(context);
  }
  result.decision = session.monitor.decide(result.estimates[primary_]);
  session.last_decision = result.decision;
}

void Engine::step_frame_locked(Shard& shard, SessionId id,
                               const data::FrameRecord& frame,
                               const sim::SignLocation* location,
                               EngineStepResult& result) {
  if (components_.ddm == nullptr || shard.models->qim == nullptr) {
    throw std::logic_error(
        "Engine::step requires a DDM and a fitted QIM (replay-only engines "
        "must use step_precomputed)");
  }
  // Run every fallible evaluation before touching session state, so a
  // throwing DDM/QIM leaves no half-created session and evicts nothing.
  components_.qf_extractor.extract_into(frame, shard.qf_scratch);
  const ml::Prediction prediction = components_.ddm->predict(frame.features);
  double uncertainty = shard.models->qim->predict(shard.qf_scratch);
  if (components_.scope.has_value() && location != nullptr) {
    uncertainty = combine_uncertainties(
        uncertainty,
        components_.scope->incompliance_probability(frame, *location));
  }
  bool created = false;
  Session& session = touch(shard, id, created);
  result.new_session = created;
  step_common(shard, id, session, shard.qf_scratch, prediction.label,
              prediction.confidence, uncertainty, result);
}

void Engine::stage_step_locked(Shard& shard, SessionId id,
                               SessionMap::iterator it,
                               const data::FrameRecord& frame,
                               const sim::SignLocation* location,
                               EngineStepResult& result) {
  BatchScratch& batch = shard.batch;
  const std::size_t num_factors = components_.qf_extractor.num_factors();
  // The group's QF rows, DDM predictions, and batched stateless-QIM
  // uncertainties were all precomputed by run_shard_task; next_row is this
  // step's position in the group. The QF row stays put for the rest of the
  // run (contexts hold spans into it) - qf_matrix was sized for the whole
  // group up front.
  const std::span<const double> qf_row(
      batch.qf_matrix.data() + batch.next_row * num_factors, num_factors);
  const ml::Prediction& prediction = batch.predictions[batch.next_row];
  double uncertainty = batch.stateless_u[batch.next_row];
  if (components_.scope.has_value() && location != nullptr) {
    uncertainty = combine_uncertainties(
        uncertainty,
        components_.scope->incompliance_probability(frame, *location));
  }
  bool created = false;
  Session& session = touch_at(shard, id, it, created);
  result.new_session = created;
  const EstimationContext context =
      commit_step(shard, id, session, qf_row, prediction.label,
                  prediction.confidence, uncertainty, result);
  ++batch.next_row;
  batch.contexts.push_back(context);
  batch.run_sessions.push_back(&session);
  batch.run_results.push_back(&result);
  session.staged_mark = batch.run_id;
}

void Engine::flush_run(Shard& shard) {
  BatchScratch& batch = shard.batch;
  const std::size_t n = batch.contexts.size();
  if (n == 0) return;
  const auto finish = [&batch] {
    batch.contexts.clear();
    batch.run_sessions.clear();
    batch.run_results.clear();
    ++batch.run_id;  // invalidates every staged_mark of the finished run
  };
  try {
    const std::size_t num_estimators = shard.estimators.size();
    batch.estimate_matrix.resize(num_estimators * n);
    const std::span<const EstimationContext> contexts(batch.contexts);
    for (std::size_t e = 0; e < num_estimators; ++e) {
      shard.estimators[e]->estimate_batch(
          contexts,
          std::span<double>(batch.estimate_matrix.data() + e * n, n));
    }
    for (std::size_t k = 0; k < n; ++k) {
      EngineStepResult& result = *batch.run_results[k];
      result.estimates.resize(num_estimators);
      for (std::size_t e = 0; e < num_estimators; ++e) {
        result.estimates[e] = batch.estimate_matrix[e * n + k];
      }
      result.decision =
          batch.run_sessions[k]->monitor.decide(result.estimates[primary_]);
      batch.run_sessions[k]->last_decision = result.decision;
    }
  } catch (...) {
    // estimate_batch is contractually no-throw; if an out-of-contract
    // estimator (or bad_alloc in a resize) throws anyway, this run's
    // estimates are abandoned but the scratch MUST still be reset - stale
    // Session/result pointers here would be dereferenced by the next
    // batch on this shard after the caller's results vector is gone.
    finish();
    throw;
  }
  finish();
}

void Engine::step_into(SessionId id, const data::FrameRecord& frame,
                       const sim::SignLocation* location,
                       EngineStepResult& result) {
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  step_frame_locked(shard, id, frame, location, result);
}

EngineStepResult Engine::step(SessionId id, const data::FrameRecord& frame,
                              const sim::SignLocation* location) {
  EngineStepResult result;
  step_into(id, frame, location, result);
  return result;
}

void Engine::step_precomputed_into(SessionId id,
                                   std::span<const double> stateless_qfs,
                                   std::size_t outcome, double uncertainty,
                                   EngineStepResult& result) {
  // Validate before any session mutation: the taUW estimator would only
  // reject a wrong-sized span after the buffer push, leaving a phantom
  // step behind.
  if (stateless_qfs.size() != components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine::step_precomputed: stateless QF count does not match the "
        "QF extractor");
  }
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  bool created = false;
  Session& session = touch(shard, id, created);
  result.new_session = created;
  step_common(shard, id, session, stateless_qfs, outcome, 0.0, uncertainty,
              result);
}

EngineStepResult Engine::step_precomputed(
    SessionId id, std::span<const double> stateless_qfs, std::size_t outcome,
    double uncertainty) {
  EngineStepResult result;
  step_precomputed_into(id, stateless_qfs, outcome, uncertainty, result);
  return result;
}

void Engine::step_batch(std::span<const SessionFrame> frames,
                        std::vector<EngineStepResult>& results) {
  // Validate the whole batch first so a bad entry cannot leave earlier
  // sessions half-stepped. (Auto-assigned ids always pass
  // validate_external_id - the engine issued them below next_auto_id_ - so
  // no session lookup is needed here.)
  for (const SessionFrame& frame : frames) {
    if (frame.frame == nullptr) {
      throw std::invalid_argument("Engine::step_batch: null frame");
    }
    validate_external_id(frame.session);
  }
  results.resize(frames.size());

  // One batch owns the pool (and the group scratch) at a time; concurrent
  // step_batch callers queue here.
  MutexLock batch_lock(batch_mutex_);

  // Group batch indices by shard, preserving input order within each group
  // - per-session step order is what makes results bit-exact across every
  // (num_shards, num_threads) configuration.
  for (auto& group : group_scratch_) group.clear();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    group_scratch_[shard_of(frames[i].session)].push_back(i);
  }

  auto state = take_batch_state();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!group_scratch_[s].empty()) {
      // The index vectors stay valid for the whole batch: group_scratch_ is
      // only reused by the next batch, which waits on batch_mutex_ until
      // this one completes.
      state->tasks.push_back(ShardTask{shards_[s].get(), &group_scratch_[s]});
    }
  }
  if (state->tasks.empty()) return;
  state->frames = frames;
  state->results = &results;
  state->remaining = state->tasks.size();

  if (workers_.empty()) {
    // Serial path: run the shard groups inline, in shard order. With one
    // shard this is exactly the single-threaded engine's loop.
    for (const ShardTask& task : state->tasks) run_shard_task(*state, task);
    return;
  }

  {
    MutexLock lock(pool_mutex_);
    current_batch_ = state;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain_tasks(*state);  // the calling thread is worker number num_threads
  MutexLock lock(pool_mutex_);
  // Explicit predicate loop (not wait(lock, pred)): the thread-safety
  // analysis cannot see into a wait predicate lambda.
  while (state->remaining != 0) done_cv_.wait(lock);
  // Drop the published reference: once straggler workers release their
  // snapshots too, take_batch_state() can recycle this state.
  if (current_batch_ == state) current_batch_ = nullptr;
  if (state->error != nullptr) {
    lock.unlock();
    std::rethrow_exception(state->error);
  }
}

std::shared_ptr<Engine::BatchState> Engine::take_batch_state() {
  std::shared_ptr<BatchState> state;
  for (const auto& spare : batch_pool_) {
    // use_count() == 1 means the pool holds the only reference: the state
    // was unpublished by its batch, and every worker snapshot is gone. No
    // new reference can appear concurrently - workers only copy from
    // current_batch_, which no longer points here.
    if (spare.use_count() == 1) {
      state = spare;
      break;
    }
  }
  if (state == nullptr) {
    state = std::make_shared<BatchState>();
    if (batch_pool_.size() < kBatchPoolCap) batch_pool_.push_back(state);
  }
  state->tasks.clear();  // capacity retained
  state->frames = {};
  state->results = nullptr;
  state->cursor.store(0, std::memory_order_relaxed);
  // remaining/error are pool_mutex_-guarded by protocol, but this state is
  // not published yet - no worker can observe these writes early.
  state->remaining = 0;
  state->error = nullptr;
  return state;
}

void Engine::run_shard_task(const BatchState& state, const ShardTask& task) {
  Shard& shard = *task.shard;
  MutexLock lock(shard.mutex);
  run_group_locked(shard, state.frames, *task.indices, *state.results);
}

void Engine::step_shard_batch(std::size_t shard_index,
                              std::span<const SessionFrame> frames,
                              std::vector<EngineStepResult>& results) {
  if (shard_index >= shards_.size()) {
    throw std::invalid_argument("Engine::step_shard_batch: shard index " +
                                std::to_string(shard_index) + " out of range");
  }
  // Same all-before-any validation contract as step_batch, plus the
  // single-shard routing precondition this entry point exists for.
  for (const SessionFrame& frame : frames) {
    if (frame.frame == nullptr) {
      throw std::invalid_argument("Engine::step_shard_batch: null frame");
    }
    validate_external_id(frame.session);
    if (shard_of(frame.session) != shard_index) {
      throw std::invalid_argument(
          "Engine::step_shard_batch: session " +
          std::to_string(frame.session) + " maps to shard " +
          std::to_string(shard_of(frame.session)) + ", not shard " +
          std::to_string(shard_index));
    }
  }
  results.resize(frames.size());
  if (frames.empty()) return;
  Shard& shard = *shards_[shard_index];
  MutexLock lock(shard.mutex);
  // A contiguous group is "indices 0..n-1"; the iota scratch lives in the
  // shard (used under its mutex), so concurrent drainers of different
  // shards never share it.
  std::vector<std::size_t>& iota = shard.batch.iota;
  iota.resize(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) iota[i] = i;
  run_group_locked(shard, frames, iota, results);
}

void Engine::run_group_locked(Shard& shard,
                              std::span<const SessionFrame> frames,
                              std::span<const std::size_t> indices,
                              std::vector<EngineStepResult>& results) {
  if (indices.size() == 1) {
    // A one-entry group gains nothing from staging; take the direct path
    // (this keeps single-session streaming free of batch overhead).
    const SessionFrame& sf = frames[indices.front()];
    step_frame_locked(shard, sf.session, *sf.frame, sf.location,
                      results[indices.front()]);
    return;
  }
  if (components_.ddm == nullptr || shard.models->qim == nullptr) {
    throw std::logic_error(
        "Engine::step requires a DDM and a fitted QIM (replay-only engines "
        "must use step_precomputed)");
  }
  BatchScratch& batch = shard.batch;
  const std::size_t group_size = indices.size();
  const std::size_t num_factors = components_.qf_extractor.num_factors();
  // Per-group scratch is carved from the shard's monotonic arena. reset()
  // is a pointer rewind once the arena has seen the high-water group shape,
  // so steady-state groups allocate nothing; sizing happens before staging
  // because contexts hold spans into qf_matrix (it must never move
  // mid-run). Every element is written before it is read (extract_into /
  // predict / predict_batch fill the full group), so default-init suffices.
  batch.arena.reset();
  batch.qf_matrix = batch.arena.alloc_span<double>(group_size * num_factors);
  batch.predictions.resize(group_size);
  batch.stateless_u = batch.arena.alloc_span<double>(group_size);
  // Evaluate every fallible, session-independent stage for the whole group
  // before any session is touched: QF extraction, the DDM, and ONE batched
  // stateless-QIM pass through the compiled tree (level-synchronous
  // routing, bit-identical to a predict() per row) instead of one pointer
  // chase per step. A throwing DDM/QIM now aborts the group before any
  // buffer push, so no step is ever committed without a result. The shard
  // mutex is held for the whole group, so shard.models cannot change
  // between here and staging - every step of the group serves one
  // generation, exactly as the per-step path did.
  for (std::size_t k = 0; k < group_size; ++k) {
    const SessionFrame& sf = frames[indices[k]];
    components_.qf_extractor.extract_into(
        *sf.frame,
        std::span<double>(batch.qf_matrix.data() + k * num_factors,
                          num_factors));
    batch.predictions[k] = components_.ddm->predict(sf.frame->features);
  }
  shard.models->qim->predict_batch(batch.qf_matrix, batch.stateless_u);
  batch.next_row = 0;
  try {
    for (const std::size_t index : indices) {
      const SessionFrame& sf = frames[index];
      const auto it = shard.sessions.find(sf.session);
      if (!batch.contexts.empty()) {
        // A pending context must see exactly its own step's state, and it
        // holds pointers into its session. Settle the run before (a) the
        // same session steps again (its buffer would advance under the
        // pending context) or (b) staging a new session at the LRU cap
        // (creating it may evict - and thereby destroy - a session a
        // pending context still references). flush_run never touches the
        // session map, so `it` stays valid across it.
        const bool repeat = it != shard.sessions.end() &&
                            it->second.staged_mark == batch.run_id;
        const bool may_evict = it == shard.sessions.end() &&
                               shard.max_sessions > 0 &&
                               shard.sessions.size() >= shard.max_sessions;
        if (repeat || may_evict) flush_run(shard);
      }
      stage_step_locked(shard, sf.session, it, *sf.frame, sf.location,
                        results[index]);
    }
    flush_run(shard);
  } catch (...) {
    // An out-of-contract throw mid-staging (e.g. bad_alloc) aborts this
    // shard's remaining entries, but steps already committed to their
    // buffers must still get their estimates - an exception must not leave
    // steps recorded without results.
    flush_run(shard);
    throw;
  }
}

void Engine::drain_tasks(BatchState& state) {
  for (;;) {
    const std::size_t t = state.cursor.fetch_add(1, std::memory_order_relaxed);
    if (t >= state.tasks.size()) return;
    try {
      run_shard_task(state, state.tasks[t]);
    } catch (...) {
      // A throwing DDM/QIM aborts this shard's remaining group entries;
      // other shards still complete. The first error is rethrown to the
      // step_batch caller.
      MutexLock lock(pool_mutex_);
      if (state.error == nullptr) state.error = std::current_exception();
    }
    MutexLock lock(pool_mutex_);
    if (--state.remaining == 0) done_cv_.notify_all();
  }
}

void Engine::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<BatchState> state;
    {
      MutexLock lock(pool_mutex_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.wait(lock);
      if (shutdown_) return;
      seen_epoch = epoch_;
      state = current_batch_;
    }
    // A worker that missed an epoch (or wakes after the batch drained)
    // finds the cursor exhausted and simply waits for the next one.
    if (state != nullptr) drain_tasks(*state);
  }
}

void Engine::report_outcome(SessionId id, MonitorDecision decision,
                            bool failure) {
  Shard& shard = shard_for(id);
  MutexLock lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    // The session may have been closed or evicted between the decision and
    // the (possibly delayed) ground-truth feedback; count it globally.
    if (decision == MonitorDecision::kAccept && failure) {
      ++shard.retired.accepted_failures;
    }
    return;
  }
  it->second.monitor.report_outcome(decision, failure);
}

void Engine::report_truth(SessionId id, std::size_t true_label) {
  const std::size_t shard_index = shard_of(id);
  Shard& shard = *shards_[shard_index];
  MutexLock lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) return;  // closed/evicted: evidence lost
  Session& session = it->second;
  if (!session.has_last_step) return;  // never stepped, or truth consumed
  const bool isolated_failure = session.last_isolated_label != true_label;
  const bool fused_failure = session.last_fused_label != true_label;
  // The monitor decided on the (primary estimator's) fused-outcome
  // uncertainty, so its accepted-failure statistics track fused failures.
  session.monitor.report_outcome(session.last_decision, fused_failure);
  if (shard.sink != nullptr && session.last_evidence_valid) {
    if (ta_builder_.has_value()) {
      // The buffer still holds exactly the last step's state (truth refers
      // to the last step by contract), so this rebuilds the row the taUW
      // saw - paid per truth report instead of per step.
      session.last_ta.resize(ta_builder_->dim());
      ta_builder_->build_into(session.last_qfs, session.buffer,
                              session.last_fused_label, session.last_ta);
    }
    EvidenceObservation observation;
    observation.stateless_qfs = session.last_qfs;
    observation.ta_features = session.last_ta;
    observation.isolated_failure = isolated_failure;
    observation.fused_failure = fused_failure;
    observation.model_generation = session.last_generation;
    observation.session = id;
    shard.sink->record(shard_index, observation);
  }
  // Consume the attribution: an at-least-once truth feed (retries, two
  // upstream confirmations for the same step) must not double-count
  // monitor outcomes or duplicate evidence rows.
  session.has_last_step = false;
  session.last_evidence_valid = false;
}

void Engine::set_evidence_sink(std::shared_ptr<EvidenceSink> sink) {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    shard->sink = sink;
  }
}

void Engine::detach_evidence_sink(const EvidenceSink* sink) {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    if (shard->sink.get() == sink) shard->sink = nullptr;
  }
}

EngineModels Engine::current_models() const {
  const Shard& shard = *shards_.front();
  MutexLock lock(shard.mutex);
  return EngineModels{shard.models->qim, shard.models->taqim,
                      shard.models->generation};
}

MonitorStats Engine::total_monitor_stats() const { return stats().monitor; }

void Engine::swap_models(std::shared_ptr<const QualityImpactModel> qim,
                         std::shared_ptr<const QualityImpactModel> taqim) {
  // Validate everything before touching any shard: a half-published
  // generation (shard 0 swapped, shard 1 rejecting) must be impossible.
  if (qim == nullptr || !qim->fitted()) {
    throw std::invalid_argument(
        "Engine::swap_models: a fitted QIM is required");
  }
  if (qim->num_features() != components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine::swap_models: QIM feature count does not match the QF "
        "extractor");
  }
  if (components_.taqim != nullptr) {
    if (taqim == nullptr || !taqim->fitted()) {
      throw std::invalid_argument(
          "Engine::swap_models: this engine serves a taUW estimator; the "
          "swap must provide a recalibrated taQIM");
    }
    const TaFeatureBuilder builder(components_.qf_extractor.num_factors(),
                                   components_.taqfs);
    if (taqim->num_features() != builder.dim()) {
      throw std::invalid_argument(
          "Engine::swap_models: taQIM feature count does not match the "
          "taQF feature builder");
    }
  } else if (taqim != nullptr) {
    throw std::invalid_argument(
        "Engine::swap_models: this engine was built without a taQIM; the "
        "estimator registry cannot grow mid-flight");
  }

  MutexLock swap_lock(swap_mutex_);
  // The generation number is consumed up front: if a custom estimator's
  // rebind_models throws mid-swap (possible only for estimators the
  // pre-checks above cannot see), earlier shards already serve the new set,
  // and a retry must not reuse the number - attribution requires a unique
  // generation per model set, torn or not.
  const std::uint64_t generation = ++next_generation_;
  const auto models = std::make_shared<const ModelSet>(
      ModelSet{std::move(qim), std::move(taqim), generation});
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    // Rebind the estimators before publishing the model set, so a throwing
    // rebind leaves THIS shard entirely on its old generation
    // (already-rebound estimators are restored best-effort). Shards
    // published before the throw stay on the new generation; the engine
    // is torn across shards but every shard is internally consistent.
    const std::shared_ptr<const ModelSet> old_models = shard->models;
    std::size_t rebound = 0;
    try {
      for (; rebound < shard->estimators.size(); ++rebound) {
        shard->estimators[rebound]->rebind_models(models->qim, models->taqim);
      }
    } catch (...) {
      for (std::size_t r = 0; r < rebound; ++r) {
        try {
          shard->estimators[r]->rebind_models(old_models->qim,
                                              old_models->taqim);
        } catch (...) {
          // Best effort: the estimator rejected its own previous model;
          // nothing safer to restore to.
        }
      }
      throw;
    }
    // RCU publish: steps holding the lock finished on the old set (still
    // alive through their shared_ptr); every later step reads this one.
    shard->models = models;
  }
  published_generation_.store(generation, std::memory_order_relaxed);
  model_swaps_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Engine::model_generation() const {
  return published_generation_.load(std::memory_order_relaxed);
}

EngineStats Engine::stats() const {
  // Coherent snapshot (see EngineStats): holding swap_mutex_ pins the
  // published generation for the whole shard walk - swap_models takes the
  // same mutex before touching any shard, so the generation/swap-count
  // pair reported here is exactly what every shard served while its
  // counters were read (no torn mid-swap view). Each shard's live map,
  // retired aggregate, and borrow count are then taken together under that
  // shard's mutex in one pass.
  MutexLock swap_lock(swap_mutex_);
  EngineStats out;
  out.model_swaps = model_swaps_.load(std::memory_order_relaxed);
  out.model_generation = published_generation_.load(std::memory_order_relaxed);
  out.worker_cpus = worker_cpus_;  // written once in the constructor
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    out.live_sessions += shard->sessions.size();
    out.borrowed_sessions += shard->borrowed;
    out.monitor += shard->retired;
    for (const auto& [id, session] : shard->sessions) {
      out.monitor += session.monitor.stats();
    }
  }
  return out;
}

}  // namespace tauw::core
