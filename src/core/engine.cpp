#include "core/engine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace tauw::core {

namespace {

// splitmix64 finalizer: session ids are often sequential (tracker series,
// auto-assigned ids), so shard selection needs a real mixer - `id %
// num_shards` would put consecutive ids on consecutive shards, which is
// fine for load but terrible for tests that want colliding ids, and it
// couples shard placement to the id-allocation pattern.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Engine::Engine(EngineComponents components, EngineConfig config)
    : components_(std::move(components)), config_(config) {
  if (components_.fusion == nullptr) {
    components_.fusion = std::make_shared<MajorityVoteFusion>();
  }
  if (components_.qim != nullptr && components_.qim->fitted() &&
      components_.qim->num_features() !=
          components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine: QIM feature count does not match the QF extractor");
  }
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.num_threads == 0) config_.num_threads = 1;

  shards_.reserve(config_.num_shards);
  const std::size_t per_shard_budget =
      config_.max_sessions == 0
          ? 0
          : (config_.max_sessions + config_.num_shards - 1) /
                config_.num_shards;
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->max_sessions = per_shard_budget;
    shard->estimators = make_default_estimators(
        components_.taqim, components_.qf_extractor.num_factors(),
        components_.taqfs);
    shard->qf_scratch.resize(components_.qf_extractor.num_factors());
    shards_.push_back(std::move(shard));
  }
  primary_ = components_.taqim != nullptr ? estimator_index("tauw")
                                          : estimator_index("worst_case");

  group_scratch_.resize(config_.num_shards);
  try {
    for (std::size_t t = 1; t < config_.num_threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A failed spawn (e.g. EAGAIN under thread pressure) must join the
    // workers already running: ~Engine() does not run when the
    // constructor unwinds, and destroying a joinable std::thread
    // terminates the process.
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t Engine::shard_of(SessionId id) const noexcept {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(mix64(id) % shards_.size());
}

std::vector<std::string> Engine::estimator_names() const {
  const auto& estimators = shards_.front()->estimators;
  std::vector<std::string> names;
  names.reserve(estimators.size());
  for (const auto& estimator : estimators) names.push_back(estimator->name());
  return names;
}

std::size_t Engine::estimator_index(std::string_view name) const {
  const auto& estimators = shards_.front()->estimators;
  for (std::size_t i = 0; i < estimators.size(); ++i) {
    if (estimators[i]->name() == name) return i;
  }
  throw std::invalid_argument("Engine: unknown estimator \"" +
                              std::string(name) + "\"");
}

void Engine::add_estimator(std::shared_ptr<UncertaintyEstimator> estimator) {
  if (estimator == nullptr) {
    throw std::invalid_argument("Engine: null estimator");
  }
  // Clone for shards 1..N-1 first so a non-cloneable estimator leaves the
  // registries untouched (all shards must stay index-aligned).
  std::vector<std::shared_ptr<UncertaintyEstimator>> clones;
  clones.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    std::shared_ptr<UncertaintyEstimator> clone = estimator->clone();
    if (clone == nullptr) {
      throw std::invalid_argument(
          "Engine: estimator \"" + estimator->name() +
          "\" does not support clone(); sharded engines need one instance "
          "per shard");
    }
    clones.push_back(std::move(clone));
  }
  shards_.front()->estimators.push_back(std::move(estimator));
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->estimators.push_back(std::move(clones[s - 1]));
  }
}

SessionId Engine::open_session() {
  const SessionId id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  create_session(shard, id);  // fresh by construction: ids are never re-issued
  return id;
}

void Engine::validate_external_id(SessionId id) const {
  // Caller-chosen ids must stay out of the auto namespace - except ids
  // this engine itself assigned (re-opening an evicted auto session).
  if ((id & kAutoSessionBit) != 0 &&
      id >= next_auto_id_.load(std::memory_order_relaxed)) {
    throw std::invalid_argument(
        "Engine: caller session ids must be below 2^63 (id " +
        std::to_string(id) + " aliases the auto-assigned namespace)");
  }
}

void Engine::open_session(SessionId id) {
  validate_external_id(id);
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it != shard.sessions.end()) {
    // Re-opening restarts the series: buffer, UF aggregates, and the
    // monitor's hysteresis mode (it belonged to the previous physical
    // object) are cleared; the monitor's statistics are kept (they belong
    // to the session's stream of decisions, not one series).
    it->second.buffer.clear();
    it->second.uf.reset();
    it->second.monitor.reset_hysteresis();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  create_session(shard, id);
}

Engine::Session& Engine::create_session(Shard& shard, SessionId id) {
  shard.lru.push_front(id);
  try {
    Session session{TimeseriesBuffer(config_.buffer_capacity),
                    UncertaintyFusionAccumulator{},
                    RuntimeMonitor(config_.monitor), shard.lru.begin()};
    const auto [it, inserted] = shard.sessions.emplace(id, std::move(session));
    if (shard.max_sessions > 0 && shard.sessions.size() > shard.max_sessions) {
      evict_lru(shard, id);
    }
    return it->second;
  } catch (...) {
    // Unwind the LRU entry so a failed emplace cannot leave a ghost id
    // that evict_lru would spin on.
    shard.lru.pop_front();
    throw;
  }
}

void Engine::evict_lru(Shard& shard, SessionId keep) {
  while (shard.sessions.size() > shard.max_sessions && !shard.lru.empty()) {
    const SessionId victim = shard.lru.back();
    if (victim == keep) break;  // never evict the session being touched
    close_session_locked(shard, victim);
  }
}

bool Engine::has_session(SessionId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sessions.find(id) != shard.sessions.end();
}

std::size_t Engine::session_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sessions.size();
  }
  return total;
}

void Engine::close_session_locked(Shard& shard, SessionId id) {
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) return;
  shard.retired += it->second.monitor.stats();
  shard.lru.erase(it->second.lru_it);
  shard.sessions.erase(it);
}

void Engine::close_session(SessionId id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  close_session_locked(shard, id);
}

const Engine::Session& Engine::session_at(const Shard& shard,
                                          SessionId id) const {
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    throw std::invalid_argument("Engine: unknown session " +
                                std::to_string(id));
  }
  return it->second;
}

const RuntimeMonitor& Engine::session_monitor(SessionId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return session_at(shard, id).monitor;
}

const TimeseriesBuffer& Engine::session_buffer(SessionId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return session_at(shard, id).buffer;
}

Engine::Session& Engine::touch(Shard& shard, SessionId id, bool& created) {
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    validate_external_id(id);
    created = true;
    return create_session(shard, id);
  }
  created = false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second;
}

void Engine::step_common(Shard& shard, SessionId id, Session& session,
                         std::span<const double> stateless_qfs,
                         std::size_t outcome, double ddm_confidence,
                         double uncertainty, EngineStepResult& result) {
  session.buffer.push(outcome, uncertainty);
  if (config_.buffer_capacity > 0 &&
      session.buffer.length() == config_.buffer_capacity) {
    // Bounded sessions window the UF aggregates to the buffer contents so
    // every estimator and the fused outcome cover the same evidence (min/
    // max cannot be decremented incrementally; the O(capacity) rebuild
    // keeps per-step cost constant).
    session.uf.reset();
    for (const BufferEntry& entry : session.buffer.entries()) {
      session.uf.push(entry.uncertainty);
    }
  } else {
    session.uf.push(uncertainty);
  }

  result.session = id;
  result.isolated.label = outcome;
  result.isolated.uncertainty = uncertainty;
  result.isolated.ddm_confidence = ddm_confidence;
  result.series_length = session.buffer.length();
  result.fused_label = components_.fusion->fuse(session.buffer);

  EstimationContext context;
  context.stateless_qfs = stateless_qfs;
  context.buffer = &session.buffer;
  context.uf = &session.uf;
  context.isolated_label = outcome;
  context.isolated_uncertainty = uncertainty;
  context.fused_label = result.fused_label;

  result.estimates.resize(shard.estimators.size());
  for (std::size_t i = 0; i < shard.estimators.size(); ++i) {
    result.estimates[i] = shard.estimators[i]->estimate(context);
  }
  result.decision = session.monitor.decide(result.estimates[primary_]);
}

void Engine::step_frame_locked(Shard& shard, SessionId id,
                               const data::FrameRecord& frame,
                               const sim::SignLocation* location,
                               EngineStepResult& result) {
  if (components_.ddm == nullptr || components_.qim == nullptr) {
    throw std::logic_error(
        "Engine::step requires a DDM and a fitted QIM (replay-only engines "
        "must use step_precomputed)");
  }
  // Run every fallible evaluation before touching session state, so a
  // throwing DDM/QIM leaves no half-created session and evicts nothing.
  components_.qf_extractor.extract_into(frame, shard.qf_scratch);
  const ml::Prediction prediction = components_.ddm->predict(frame.features);
  double uncertainty = components_.qim->predict(shard.qf_scratch);
  if (components_.scope.has_value() && location != nullptr) {
    uncertainty = combine_uncertainties(
        uncertainty,
        components_.scope->incompliance_probability(frame, *location));
  }
  bool created = false;
  Session& session = touch(shard, id, created);
  result.new_session = created;
  step_common(shard, id, session, shard.qf_scratch, prediction.label,
              prediction.confidence, uncertainty, result);
}

void Engine::step_into(SessionId id, const data::FrameRecord& frame,
                       const sim::SignLocation* location,
                       EngineStepResult& result) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  step_frame_locked(shard, id, frame, location, result);
}

EngineStepResult Engine::step(SessionId id, const data::FrameRecord& frame,
                              const sim::SignLocation* location) {
  EngineStepResult result;
  step_into(id, frame, location, result);
  return result;
}

void Engine::step_precomputed_into(SessionId id,
                                   std::span<const double> stateless_qfs,
                                   std::size_t outcome, double uncertainty,
                                   EngineStepResult& result) {
  // Validate before any session mutation: the taUW estimator would only
  // reject a wrong-sized span after the buffer push, leaving a phantom
  // step behind.
  if (stateless_qfs.size() != components_.qf_extractor.num_factors()) {
    throw std::invalid_argument(
        "Engine::step_precomputed: stateless QF count does not match the "
        "QF extractor");
  }
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  bool created = false;
  Session& session = touch(shard, id, created);
  result.new_session = created;
  step_common(shard, id, session, stateless_qfs, outcome, 0.0, uncertainty,
              result);
}

EngineStepResult Engine::step_precomputed(
    SessionId id, std::span<const double> stateless_qfs, std::size_t outcome,
    double uncertainty) {
  EngineStepResult result;
  step_precomputed_into(id, stateless_qfs, outcome, uncertainty, result);
  return result;
}

void Engine::step_batch(std::span<const SessionFrame> frames,
                        std::vector<EngineStepResult>& results) {
  // Validate the whole batch first so a bad entry cannot leave earlier
  // sessions half-stepped. (Auto-assigned ids always pass
  // validate_external_id - the engine issued them below next_auto_id_ - so
  // no session lookup is needed here.)
  for (const SessionFrame& frame : frames) {
    if (frame.frame == nullptr) {
      throw std::invalid_argument("Engine::step_batch: null frame");
    }
    validate_external_id(frame.session);
  }
  results.resize(frames.size());

  // One batch owns the pool (and the group scratch) at a time; concurrent
  // step_batch callers queue here.
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);

  // Group batch indices by shard, preserving input order within each group
  // - per-session step order is what makes results bit-exact across every
  // (num_shards, num_threads) configuration.
  for (auto& group : group_scratch_) group.clear();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    group_scratch_[shard_of(frames[i].session)].push_back(i);
  }

  auto state = std::make_shared<BatchState>();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!group_scratch_[s].empty()) {
      // The index vectors stay valid for the whole batch: group_scratch_ is
      // only reused by the next batch, which waits on batch_mutex_ until
      // this one completes.
      state->tasks.push_back(ShardTask{shards_[s].get(), &group_scratch_[s]});
    }
  }
  if (state->tasks.empty()) return;
  state->frames = frames;
  state->results = &results;
  state->remaining = state->tasks.size();

  if (workers_.empty()) {
    // Serial path: run the shard groups inline, in shard order. With one
    // shard this is exactly the single-threaded engine's loop.
    for (const ShardTask& task : state->tasks) run_shard_task(*state, task);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    current_batch_ = state;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain_tasks(*state);  // the calling thread is worker number num_threads
  std::unique_lock<std::mutex> lock(pool_mutex_);
  done_cv_.wait(lock, [&] { return state->remaining == 0; });
  if (state->error != nullptr) {
    lock.unlock();
    std::rethrow_exception(state->error);
  }
}

void Engine::run_shard_task(const BatchState& state, const ShardTask& task) {
  Shard& shard = *task.shard;
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (const std::size_t index : *task.indices) {
    const SessionFrame& sf = state.frames[index];
    step_frame_locked(shard, sf.session, *sf.frame, sf.location,
                      (*state.results)[index]);
  }
}

void Engine::drain_tasks(BatchState& state) {
  for (;;) {
    const std::size_t t = state.cursor.fetch_add(1, std::memory_order_relaxed);
    if (t >= state.tasks.size()) return;
    try {
      run_shard_task(state, state.tasks[t]);
    } catch (...) {
      // A throwing DDM/QIM aborts this shard's remaining group entries;
      // other shards still complete. The first error is rethrown to the
      // step_batch caller.
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (state.error == nullptr) state.error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (--state.remaining == 0) done_cv_.notify_all();
  }
}

void Engine::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<BatchState> state;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      state = current_batch_;
    }
    // A worker that missed an epoch (or wakes after the batch drained)
    // finds the cursor exhausted and simply waits for the next one.
    if (state != nullptr) drain_tasks(*state);
  }
}

void Engine::report_outcome(SessionId id, MonitorDecision decision,
                            bool failure) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    // The session may have been closed or evicted between the decision and
    // the (possibly delayed) ground-truth feedback; count it globally.
    if (decision == MonitorDecision::kAccept && failure) {
      ++shard.retired.accepted_failures;
    }
    return;
  }
  it->second.monitor.report_outcome(decision, failure);
}

MonitorStats Engine::total_monitor_stats() const {
  MonitorStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->retired;
    for (const auto& [id, session] : shard->sessions) {
      total += session.monitor.stats();
    }
  }
  return total;
}

}  // namespace tauw::core
