#pragma once
// Information fusion (infFuse) over successive DDM outcomes.
//
// The paper fuses the outcomes o_0..o_i of one timeseries with majority
// voting; ties are resolved toward the most recent momentaneous prediction
// (Section IV.C.3). Additional transparent rules are provided for ablation
// benches: certainty-weighted voting and recency-weighted voting.

#include <cstddef>
#include <memory>
#include <string>

#include "core/timeseries_buffer.hpp"

namespace tauw::core {

/// Strategy interface: fuse all outcomes currently in the buffer.
/// Requires a non-empty buffer.
class InformationFusion {
 public:
  virtual ~InformationFusion() = default;
  virtual std::size_t fuse(const TimeseriesBuffer& buffer) const = 0;
  virtual std::string name() const = 0;
};

/// Majority voting; ties go to the most recent prediction among the tied
/// classes (the paper's rule).
class MajorityVoteFusion final : public InformationFusion {
 public:
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "majority_vote"; }
};

/// Votes weighted by the per-step certainty 1 - u_j; ties to most recent.
class CertaintyWeightedFusion final : public InformationFusion {
 public:
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "certainty_weighted"; }
};

/// Votes with exponential recency decay: weight lambda^(age); ties to most
/// recent. lambda in (0, 1]; lambda = 1 reduces to majority voting.
class RecencyWeightedFusion final : public InformationFusion {
 public:
  explicit RecencyWeightedFusion(double lambda = 0.85);
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "recency_weighted"; }

 private:
  double lambda_;
};

/// Always returns the latest outcome (no fusion) - the isolated baseline.
class LatestOutcomeFusion final : public InformationFusion {
 public:
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "latest_outcome"; }
};

}  // namespace tauw::core
