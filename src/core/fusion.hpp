#pragma once
// Information fusion (infFuse) over successive DDM outcomes.
//
// The paper fuses the outcomes o_0..o_i of one timeseries with majority
// voting; ties are resolved toward the most recent momentaneous prediction
// (Section IV.C.3). Additional transparent rules are provided for ablation
// benches: certainty-weighted voting and recency-weighted voting.
//
// fuse() is STREAMING: it reads the buffer's per-outcome aggregates
// (TimeseriesBuffer::outcome_stats) in O(k) for k distinct outcomes instead
// of rescanning the window - the last O(window) cost on the serving hot
// path. Every rule keeps its original full-window scan as fuse_reference(),
// the executable oracle the fuzz suite checks the streaming form against
// (same discipline as train_cart_reference). Majority voting and - on
// add-only windows - certainty weighting are exactly equivalent to the
// scan; see the equivalence notes on each rule.

#include <cstddef>
#include <memory>
#include <string>

#include "core/timeseries_buffer.hpp"

namespace tauw::core {

/// Strategy interface: fuse all outcomes currently in the buffer.
/// Requires a non-empty buffer.
class InformationFusion {
 public:
  virtual ~InformationFusion() = default;
  /// Streaming fusion from the buffer's incremental aggregates.
  virtual std::size_t fuse(const TimeseriesBuffer& buffer) const = 0;
  /// Full-window rescan oracle; defaults to fuse() for rules whose fuse()
  /// already scans (e.g. the Dempster-Shafer combiner).
  virtual std::size_t fuse_reference(const TimeseriesBuffer& buffer) const {
    return fuse(buffer);
  }
  /// The decay lambda a session buffer must maintain for this rule's
  /// streaming form (TimeseriesBuffer's decayed_votes plane); 0 when the
  /// rule needs none. The engine configures session buffers with this
  /// value; fuse() on a buffer without matching decay state falls back to
  /// the reference scan.
  virtual double streaming_decay() const noexcept { return 0.0; }
  virtual std::string name() const = 0;
};

/// Majority voting; ties go to the most recent prediction among the tied
/// classes (the paper's rule). Streaming form is EXACTLY equivalent to the
/// scan in all cases: votes are integer counts, and "first label with
/// maximal votes scanning newest-to-oldest" is "maximal last_seen among the
/// argmax labels".
class MajorityVoteFusion final : public InformationFusion {
 public:
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::size_t fuse_reference(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "majority_vote"; }
};

/// Votes weighted by the per-step certainty 1 - u_j; ties to most recent.
/// Streaming form reads the per-outcome certainty_sum: bit-identical to the
/// scan on add-only windows and at re-anchor epochs; between anchors of an
/// evicting window the sums drift by O(window) ulps, so a label may flip
/// only within the scan's own 1e-12 tie band.
class CertaintyWeightedFusion final : public InformationFusion {
 public:
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::size_t fuse_reference(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "certainty_weighted"; }
};

/// Votes with exponential recency decay: weight lambda^(age); ties to most
/// recent. lambda in (0, 1]; lambda = 1 reduces to majority voting.
/// Streaming form reads the buffer's decayed_votes plane (Horner rescale
/// per push, exact resummation at epochs) when the buffer was configured
/// with this rule's lambda (see streaming_decay); otherwise it falls back
/// to the reference scan.
class RecencyWeightedFusion final : public InformationFusion {
 public:
  explicit RecencyWeightedFusion(double lambda = 0.85);
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::size_t fuse_reference(const TimeseriesBuffer& buffer) const override;
  double streaming_decay() const noexcept override { return lambda_; }
  std::string name() const override { return "recency_weighted"; }

 private:
  double lambda_;
};

/// Always returns the latest outcome (no fusion) - the isolated baseline.
class LatestOutcomeFusion final : public InformationFusion {
 public:
  std::size_t fuse(const TimeseriesBuffer& buffer) const override;
  std::string name() const override { return "latest_outcome"; }
};

}  // namespace tauw::core
