#include "core/study.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "calib/recalibrator.hpp"

namespace tauw::core {

namespace {

// Salts deriving independent data-generation sub-streams per dataset role.
constexpr std::uint64_t kSaltCalib = 0x00c0ffee;
constexpr std::uint64_t kSaltTest = 0x7e57da7a;
constexpr std::uint64_t kSaltTaTrain = 0x7a7a1111;

}  // namespace

StudyConfig StudyConfig::small() {
  StudyConfig cfg;
  cfg.data.num_series = 72;
  cfg.data.frames_per_series = 12;
  cfg.data.train_series = 36;
  cfg.data.calib_series = 18;
  cfg.data.test_series = 18;
  cfg.data.train_frame_stride = 5;
  cfg.data.eval_replicas = 2;
  cfg.data.subsample_length = 6;
  cfg.data.feature_config.pixel_grid = 10;
  cfg.data.feature_config.edge_grid = 5;
  cfg.mlp_hidden = 32;
  cfg.trainer.epochs = 5;
  cfg.qim.calibration.min_leaf_samples = 40;
  cfg.qim.cart.max_depth = 6;
  return cfg;
}

StudyConfig StudyConfig::medium() {
  StudyConfig cfg;
  cfg.data.num_series = 300;
  cfg.data.frames_per_series = 20;
  cfg.data.train_series = 150;
  cfg.data.calib_series = 75;
  cfg.data.test_series = 75;
  cfg.data.train_frame_stride = 5;
  cfg.data.eval_replicas = 3;
  cfg.data.subsample_length = 8;
  cfg.data.feature_config.pixel_grid = 12;
  cfg.data.feature_config.edge_grid = 6;
  cfg.mlp_hidden = 48;
  cfg.trainer.epochs = 8;
  cfg.qim.calibration.min_leaf_samples = 100;
  cfg.qim.cart.max_depth = 7;
  return cfg;
}

Study::Study(StudyConfig config) : config_(std::move(config)) {}
Study::~Study() = default;

void Study::log(const std::string& message) const {
  if (config_.verbose) std::printf("[study] %s\n", message.c_str());
}

void Study::run() {
  renderer_ = std::make_unique<imaging::SignRenderer>(config_.seed ^ 0x5157);
  weather_ = std::make_unique<sim::WeatherModel>(config_.seed ^ 0x3311);
  roads_ = std::make_unique<sim::RoadNetwork>(512, config_.seed ^ 0x77aa);
  generator_ = std::make_unique<data::GtsrbLikeGenerator>(
      config_.data, *renderer_, *weather_, *roads_);
  qf_extractor_ =
      QualityFactorExtractor(static_cast<double>(imaging::kFrameSize));

  fusion_ = std::make_shared<MajorityVoteFusion>();

  const data::SplitIndices split = generator_->split();

  // ---- 1. DDM training -------------------------------------------------
  log("generating training frames");
  dtree::TreeDataset qim_train;
  {
    const data::FrameDataset train_frames =
        generator_->make_training_frames(split.train);
    log("training frames: " + std::to_string(train_frames.size()));

    ml::TrainingSet train_set;
    train_set.feature_dim = config_.data.feature_config.pixel_grid *
                                config_.data.feature_config.pixel_grid +
                            config_.data.feature_config.edge_grid *
                                config_.data.feature_config.edge_grid +
                            (config_.data.feature_config.include_mean_std ? 2 : 0);
    for (const data::FrameRecord& rec : train_frames.records) {
      train_set.push_back(rec.features, rec.label);
    }
    ddm_ = std::make_shared<ml::MlpClassifier>(
        train_set.feature_dim, config_.mlp_hidden,
        renderer_->num_classes(), config_.seed ^ 0xdd1);
    log("training DDM");
    ml::TrainerConfig trainer = config_.trainer;
    trainer.verbose = config_.verbose;
    ml::train(*ddm_, train_set, trainer);
    ddm_train_accuracy_ = ml::evaluate_accuracy(*ddm_, train_set);
    log("DDM train accuracy: " + std::to_string(ddm_train_accuracy_));

    // Stateless QIM training rows from the same augmented training frames:
    // quality factors -> did the DDM misclassify?
    for (const data::FrameRecord& rec : train_frames.records) {
      const ml::Prediction pred = ddm_->predict(rec.features);
      qim_train.push_back(qf_extractor_.extract(rec), pred.label != rec.label);
    }
    qim_train.feature_names = qf_extractor_.names();
  }

  // ---- 2. Stateless UW calibration --------------------------------------
  log("generating calibration series");
  const data::SeriesDataset calib_series =
      generator_->make_eval_series(split.calib, kSaltCalib);
  const dtree::TreeDataset qim_calib = stateless_dataset(calib_series);
  log("fitting stateless QIM");
  // The offline fit runs through the calibration plane's shared fit path
  // (grow + prune + calibrate + compile) - the same implementation the
  // online Recalibrator's regrow path uses, so offline and online
  // calibration can never diverge.
  dtree::FitContext fit_ctx;
  fit_ctx.num_threads = config_.fit_threads;
  qim_ = calib::Recalibrator::regrown_model(qim_train, qim_calib, config_.qim,
                                            qf_extractor_.names(), fit_ctx);
  wrapper_ = std::make_unique<UncertaintyWrapper>(*ddm_, qf_extractor_, *qim_);

  // ---- 3. Traces ---------------------------------------------------------
  // The taQIM is not fitted yet, so the trace engine runs the stateless
  // pipeline (DDM + QIM + information fusion) without the taUW estimator.
  Engine trace_engine(base_components(), EngineConfig{.max_sessions = 0});
  log("generating taQIM training series");
  {
    const data::SeriesDataset ta_train_series =
        generator_->make_eval_series(split.train, kSaltTaTrain);
    train_ta_traces_ = make_traces(ta_train_series, trace_engine);
  }
  calib_traces_ = make_traces(calib_series, trace_engine);
  log("generating test series");
  {
    const data::SeriesDataset test_series =
        generator_->make_eval_series(split.test, kSaltTest);
    test_traces_ = make_traces(test_series, trace_engine);
  }

  // ---- 4. taQIM ----------------------------------------------------------
  log("fitting taQIM");
  taqim_ = fit_taqim(config_.taqfs);

  // ---- 5. Test-set evaluation --------------------------------------------
  // Replays the recorded test traces through the full engine: every
  // registered estimator (stateless, the three UF baselines, the taUW)
  // produces one forecast per (series, timestep).
  EngineComponents eval_components = base_components();
  eval_components.taqim = taqim_;
  eval_components.taqfs = config_.taqfs;
  engine_ = std::make_unique<Engine>(std::move(eval_components),
                                     EngineConfig{.max_sessions = 0});
  const std::size_t i_naive = engine_->estimator_index("naive");
  const std::size_t i_opportune = engine_->estimator_index("opportune");
  const std::size_t i_worst = engine_->estimator_index("worst_case");
  const std::size_t i_tauw = engine_->estimator_index("tauw");

  rows_.clear();
  std::size_t isolated_failures = 0;
  std::size_t frames = 0;
  EngineStepResult step_result;
  for (std::size_t s = 0; s < test_traces_.size(); ++s) {
    const SeriesTrace& trace = test_traces_[s];
    const SessionId session = engine_->open_session();
    for (std::size_t t = 0; t < trace.steps.size(); ++t) {
      const StepTrace& step = trace.steps[t];
      engine_->step_precomputed_into(session, step.stateless_qfs, step.outcome,
                                     step.uncertainty, step_result);
      EvalRow row;
      row.series = s;
      row.timestep = t;
      row.isolated_failure = step.outcome != trace.truth;
      row.fused_failure = step_result.fused_label != trace.truth;
      row.u_stateless = step.uncertainty;
      row.u_naive = step_result.estimates[i_naive];
      row.u_opportune = step_result.estimates[i_opportune];
      row.u_worst_case = step_result.estimates[i_worst];
      row.u_tauw = step_result.estimates[i_tauw];
      rows_.push_back(row);
      isolated_failures += row.isolated_failure ? 1 : 0;
      ++frames;
    }
    engine_->close_session(session);
  }
  ddm_test_accuracy_ =
      frames == 0 ? 0.0
                  : 1.0 - static_cast<double>(isolated_failures) /
                              static_cast<double>(frames);
  log("DDM test accuracy: " + std::to_string(ddm_test_accuracy_));
  ran_ = true;
}

std::vector<SeriesTrace> Study::make_traces(const data::SeriesDataset& dataset,
                                            Engine& engine) const {
  std::vector<SeriesTrace> traces;
  traces.reserve(dataset.series.size());
  EngineStepResult result;
  for (const data::RecordSeries& rs : dataset.series) {
    SeriesTrace trace;
    trace.truth = rs.label;
    trace.steps.reserve(rs.frames.size());
    const SessionId session = engine.open_session();
    for (const data::FrameRecord& frame : rs.frames) {
      engine.step_into(session, frame, nullptr, result);
      StepTrace step;
      step.stateless_qfs = qf_extractor_.extract(frame);
      step.outcome = result.isolated.label;
      step.uncertainty = result.isolated.uncertainty;
      step.fused = result.fused_label;
      trace.steps.push_back(std::move(step));
    }
    engine.close_session(session);
    traces.push_back(std::move(trace));
  }
  return traces;
}

dtree::TreeDataset Study::stateless_dataset(
    const data::SeriesDataset& dataset) const {
  dtree::TreeDataset out;
  out.feature_names = qf_extractor_.names();
  for (const data::RecordSeries& rs : dataset.series) {
    for (const data::FrameRecord& frame : rs.frames) {
      const ml::Prediction pred = ddm_->predict(frame.features);
      out.push_back(qf_extractor_.extract(frame), pred.label != rs.label);
    }
  }
  return out;
}

dtree::TreeDataset Study::ta_dataset(const std::vector<SeriesTrace>& traces,
                                     const TaFeatureBuilder& builder) const {
  dtree::TreeDataset out;
  std::vector<double> features(builder.dim());
  for (const SeriesTrace& trace : traces) {
    TimeseriesBuffer buffer;
    for (const StepTrace& step : trace.steps) {
      buffer.push(step.outcome, step.uncertainty);
      builder.build_into(step.stateless_qfs, buffer, step.fused, features);
      out.push_back(features, step.fused != trace.truth);
    }
  }
  out.feature_names = builder.names(qf_extractor_.names());
  return out;
}

std::shared_ptr<QualityImpactModel> Study::fit_taqim(TaqfSet set) const {
  const TaFeatureBuilder builder(qf_extractor_.num_factors(), set);
  const dtree::TreeDataset train = ta_dataset(train_ta_traces_, builder);
  const dtree::TreeDataset calib = ta_dataset(calib_traces_, builder);
  // Same shared fit path as the stateless QIM (see Study::run).
  dtree::FitContext fit_ctx;
  fit_ctx.num_threads = config_.fit_threads;
  return calib::Recalibrator::regrown_model(
      train, calib, config_.qim, builder.names(qf_extractor_.names()), fit_ctx);
}

namespace {

void require_ran(bool ran) {
  if (!ran) throw std::logic_error("Study::run() has not been called");
}

}  // namespace

double Study::ddm_test_accuracy() const {
  require_ran(ran_);
  return ddm_test_accuracy_;
}

double Study::ddm_train_accuracy() const {
  require_ran(ran_);
  return ddm_train_accuracy_;
}

const std::vector<EvalRow>& Study::rows() const {
  require_ran(ran_);
  return rows_;
}

Fig4Result Study::fig4() const {
  require_ran(ran_);
  const std::size_t window = config_.data.subsample_length;
  std::vector<std::size_t> isolated(window, 0);
  std::vector<std::size_t> fused(window, 0);
  std::vector<std::size_t> counts(window, 0);
  for (const EvalRow& row : rows_) {
    isolated[row.timestep] += row.isolated_failure ? 1 : 0;
    fused[row.timestep] += row.fused_failure ? 1 : 0;
    ++counts[row.timestep];
  }
  Fig4Result result;
  double iso_sum = 0.0;
  double fus_sum = 0.0;
  for (std::size_t t = 0; t < window; ++t) {
    Fig4Row row;
    row.timestep = t + 1;
    row.count = counts[t];
    row.isolated_rate = counts[t] == 0 ? 0.0
                                       : static_cast<double>(isolated[t]) /
                                             static_cast<double>(counts[t]);
    row.fused_rate = counts[t] == 0 ? 0.0
                                    : static_cast<double>(fused[t]) /
                                          static_cast<double>(counts[t]);
    iso_sum += row.isolated_rate;
    fus_sum += row.fused_rate;
    result.rows.push_back(row);
  }
  result.isolated_avg = iso_sum / static_cast<double>(window);
  result.fused_avg = fus_sum / static_cast<double>(window);
  result.fused_final = result.rows.empty() ? 0.0 : result.rows.back().fused_rate;
  return result;
}

Table1Result Study::table1() const {
  require_ran(ran_);
  const std::size_t n = rows_.size();
  std::vector<double> forecast(n);
  std::vector<std::uint8_t> isolated_failure(n);
  std::vector<std::uint8_t> fused_failure(n);
  for (std::size_t i = 0; i < n; ++i) {
    isolated_failure[i] = rows_[i].isolated_failure;
    fused_failure[i] = rows_[i].fused_failure;
  }

  Table1Result result;
  const auto add = [&](const std::string& name, auto u_of,
                       const std::vector<std::uint8_t>& failures) {
    for (std::size_t i = 0; i < n; ++i) forecast[i] = u_of(rows_[i]);
    ApproachScore score;
    score.name = name;
    score.decomposition = stats::brier_decomposition(forecast, failures);
    result.rows.push_back(std::move(score));
  };

  add("stateless UW (no IF + no UF)",
      [](const EvalRow& r) { return r.u_stateless; }, isolated_failure);
  add("IF + no UF", [](const EvalRow& r) { return r.u_stateless; },
      fused_failure);
  add("IF + naive UF", [](const EvalRow& r) { return r.u_naive; },
      fused_failure);
  add("IF + worst-case UF", [](const EvalRow& r) { return r.u_worst_case; },
      fused_failure);
  add("IF + opportune UF", [](const EvalRow& r) { return r.u_opportune; },
      fused_failure);
  add("IF + taUW", [](const EvalRow& r) { return r.u_tauw; }, fused_failure);
  return result;
}

Fig5Result Study::fig5() const {
  require_ran(ran_);
  std::vector<double> u_stateless;
  std::vector<double> u_tauw;
  u_stateless.reserve(rows_.size());
  u_tauw.reserve(rows_.size());
  for (const EvalRow& row : rows_) {
    u_stateless.push_back(row.u_stateless);
    u_tauw.push_back(row.u_tauw);
  }
  Fig5Result result;
  result.stateless_distribution = stats::distinct_value_distribution(u_stateless);
  result.tauw_distribution = stats::distinct_value_distribution(u_tauw);
  if (!result.stateless_distribution.empty()) {
    result.stateless_min_u = result.stateless_distribution.front().value;
    result.stateless_min_u_fraction =
        result.stateless_distribution.front().fraction;
  }
  if (!result.tauw_distribution.empty()) {
    result.tauw_min_u = result.tauw_distribution.front().value;
    result.tauw_min_u_fraction = result.tauw_distribution.front().fraction;
  }
  return result;
}

Fig6Result Study::fig6(std::size_t num_bins) const {
  require_ran(ran_);
  const std::size_t n = rows_.size();
  std::vector<double> forecast(n);
  std::vector<std::uint8_t> fused_failure(n);
  for (std::size_t i = 0; i < n; ++i) fused_failure[i] = rows_[i].fused_failure;

  Fig6Result result;
  const auto add = [&](const std::string& name, auto u_of) {
    for (std::size_t i = 0; i < n; ++i) forecast[i] = u_of(rows_[i]);
    Fig6Curve curve;
    curve.name = name;
    curve.points = stats::calibration_curve(forecast, fused_failure, num_bins);
    result.curves.push_back(std::move(curve));
  };
  add("naive UF", [](const EvalRow& r) { return r.u_naive; });
  add("worst-case UF", [](const EvalRow& r) { return r.u_worst_case; });
  add("opportune UF", [](const EvalRow& r) { return r.u_opportune; });
  add("taUW", [](const EvalRow& r) { return r.u_tauw; });
  return result;
}

double Study::taqf_subset_brier(TaqfSet set) const {
  require_ran(ran_);
  // Replays the recorded test traces through the subset's taQIM (the DDM
  // and stateless QIM ride along but only step_precomputed is used).
  EngineComponents components = base_components();
  components.taqim = fit_taqim(set);
  components.taqfs = set;
  Engine replay(std::move(components), EngineConfig{.max_sessions = 0});
  const std::size_t i_tauw = replay.estimator_index("tauw");
  std::vector<double> forecast;
  std::vector<std::uint8_t> failures;
  forecast.reserve(rows_.size());
  failures.reserve(rows_.size());
  EngineStepResult result;
  for (const SeriesTrace& trace : test_traces_) {
    const SessionId session = replay.open_session();
    for (const StepTrace& step : trace.steps) {
      replay.step_precomputed_into(session, step.stateless_qfs, step.outcome,
                                   step.uncertainty, result);
      forecast.push_back(result.estimates[i_tauw]);
      failures.push_back(result.fused_label != trace.truth);
    }
    replay.close_session(session);
  }
  return stats::brier_score(forecast, failures);
}

Fig7Result Study::fig7() const {
  require_ran(ran_);
  Fig7Result result;
  for (const TaqfSet& set : all_taqf_subsets()) {
    Fig7Entry entry;
    entry.set = set;
    entry.name = taqf_set_name(set);
    entry.brier = taqf_subset_brier(set);
    result.entries.push_back(std::move(entry));
  }
  return result;
}

const ml::MlpClassifier& Study::ddm() const {
  require_ran(ran_);
  return *ddm_;
}
const QualityImpactModel& Study::qim() const {
  require_ran(ran_);
  return *qim_;
}
const QualityImpactModel& Study::taqim() const {
  require_ran(ran_);
  return *taqim_;
}
const UncertaintyWrapper& Study::wrapper() const {
  require_ran(ran_);
  return *wrapper_;
}
const QualityFactorExtractor& Study::qf_extractor() const {
  require_ran(ran_);
  return qf_extractor_;
}
const imaging::SignRenderer& Study::renderer() const {
  require_ran(ran_);
  return *renderer_;
}
const std::vector<SeriesTrace>& Study::test_traces() const {
  require_ran(ran_);
  return test_traces_;
}

Engine& Study::engine() {
  require_ran(ran_);
  return *engine_;
}
const Engine& Study::engine() const {
  require_ran(ran_);
  return *engine_;
}

EngineComponents Study::base_components() const {
  EngineComponents components;
  components.ddm = ddm_;
  components.qf_extractor = qf_extractor_;
  components.qim = qim_;
  components.fusion = fusion_;
  return components;
}

EngineComponents Study::engine_components() const {
  require_ran(ran_);
  EngineComponents components = base_components();
  components.taqim = taqim_;
  components.taqfs = config_.taqfs;
  return components;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace tauw::core
