#pragma once
// Session-oriented uncertainty engine - the streaming, multi-track front
// door of the library.
//
// The paper's taUW (Fig. 2) is a streaming component: per-step outcomes flow
// through a timeseries buffer into fused uncertainties. The legacy wrappers
// (`UncertaintyWrapper`, `TimeseriesAwareWrapper`) support one series at a
// time and borrow their components by raw pointer; the Engine replaces both
// limitations:
//
//   * it OWNS its components via shared_ptr/value semantics (no lifetime
//     contracts for callers to get wrong),
//   * it manages many concurrent series keyed by SessionId (open / step /
//     close, with an optional LRU cap so memory stays bounded under heavy
//     multi-user traffic),
//   * it evaluates a polymorphic registry of UncertaintyEstimators - the
//     stateless UW, the three UF baselines, and the taUW - on every step,
//   * each session carries its own RuntimeMonitor accept/fallback state,
//   * `step_batch` processes a whole frame of SessionFrames while reusing
//     scratch and result buffers (the hot path).
//
// Sessions map 1:1 to tracked physical objects; see
// tracking/engine_bridge.hpp for the tracker integration that opens and
// closes sessions automatically.

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "core/fusion.hpp"
#include "core/monitor.hpp"
#include "core/quality_factors.hpp"
#include "core/scope_model.hpp"
#include "core/wrapper.hpp"
#include "data/timeseries.hpp"
#include "ml/classifier.hpp"

namespace tauw::core {

/// Identifies one concurrent timeseries (e.g. one tracked sign, one user
/// stream). Ids are chosen by the caller (below 2^63) or auto-assigned by
/// open_session() from a disjoint namespace (top bit set), so external ids
/// - e.g. tracker series ids - never collide with auto-assigned sessions.
using SessionId = std::uint64_t;

/// The components an Engine evaluates. All are owned (shared_ptr or value);
/// copying an EngineComponents is cheap and shares the underlying models.
struct EngineComponents {
  /// The wrapped DDM. Required for step(); replay-only engines (that only
  /// ever call step_precomputed) may leave it null.
  std::shared_ptr<const ml::Classifier> ddm;
  /// Stateless quality-factor extractor (value type).
  QualityFactorExtractor qf_extractor{};
  /// Fitted stateless QIM. Required for step(); optional for replay-only.
  std::shared_ptr<const QualityImpactModel> qim;
  /// Fitted timeseries-aware QIM; null disables the taUW estimator.
  std::shared_ptr<const QualityImpactModel> taqim;
  /// The taQF subset the taQIM was fitted with - a property of the model,
  /// carried alongside it so component sets stay self-consistent.
  TaqfSet taqfs = TaqfSet::all();
  /// Information-fusion rule; null defaults to majority voting.
  std::shared_ptr<const InformationFusion> fusion;
  /// Optional scope compliance model (combined when a location is given).
  std::optional<ScopeComplianceModel> scope{};
};

struct EngineConfig {
  /// Maximum number of live sessions; opening more evicts the least
  /// recently stepped session (its monitor statistics are folded into the
  /// retired aggregate; its buffer and hysteresis mode are dropped - an
  /// evicted session stepped again starts as a fresh series). 0 =
  /// unbounded.
  std::size_t max_sessions = 1024;
  /// Per-session timeseries buffer bound (0 = unbounded, the paper's
  /// setting; series end via the tracker). When bounded, the UF baselines
  /// are windowed to the buffer contents as well, so all estimates and the
  /// fused outcome cover the same evidence.
  std::size_t buffer_capacity = 0;
  /// Per-session runtime-monitor configuration.
  MonitorConfig monitor{};
};

/// One (session, frame) pair of a batched step.
struct SessionFrame {
  SessionId session = 0;
  const data::FrameRecord* frame = nullptr;
  /// Optional sign location for the scope model.
  const sim::SignLocation* location = nullptr;
};

/// Everything the engine produces for one step of one session.
struct EngineStepResult {
  SessionId session = 0;
  UncertainOutcome isolated{};    ///< o_i and stateless u_i
  std::size_t fused_label = 0;    ///< o_i^(if)
  /// Evidence steps in the session's buffer: i + 1 for unbounded sessions,
  /// saturating at EngineConfig::buffer_capacity for bounded ones.
  std::size_t series_length = 0;
  /// One estimate per Engine::estimators(), in registry order.
  std::vector<double> estimates;
  /// The session monitor's verdict on the primary estimate.
  MonitorDecision decision = MonitorDecision::kAccept;
  /// True when this step implicitly created the session - it was never
  /// opened, or was LRU-evicted (possibly earlier in the same batch).
  /// Consumers relying on continuous series should watch this flag.
  bool new_session = false;
};

class Engine {
 public:
  explicit Engine(EngineComponents components, EngineConfig config = {});

  // Copying is deleted: per-session LRU iterators cannot be shallow-copied
  // (and two engines sharing live session state is never intended). Moving
  // is fine - list/map moves preserve the cross-references.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  const EngineComponents& components() const noexcept { return components_; }
  const EngineConfig& config() const noexcept { return config_; }

  // -- estimator registry -------------------------------------------------
  std::span<const std::shared_ptr<UncertaintyEstimator>> estimators()
      const noexcept {
    return estimators_;
  }
  std::vector<std::string> estimator_names() const;
  /// Index into EngineStepResult::estimates; throws if unknown.
  std::size_t estimator_index(std::string_view name) const;
  /// The estimate the per-session monitor decides on: "tauw" when a taQIM
  /// is configured, otherwise "worst_case" (the conservative baseline).
  std::size_t primary_index() const noexcept { return primary_; }
  /// Registers an additional estimator (evaluated after the defaults).
  /// Its estimate() must not throw - see UncertaintyEstimator's contract.
  void add_estimator(std::shared_ptr<UncertaintyEstimator> estimator);

  // -- session management -------------------------------------------------
  /// Opens a fresh session under an auto-assigned id.
  SessionId open_session();
  /// Opens (or resets) the session with the given id.
  void open_session(SessionId id);
  bool has_session(SessionId id) const noexcept;
  std::size_t session_count() const noexcept { return sessions_.size(); }
  /// Closes a session, folding its monitor statistics into the retired
  /// aggregate. Unknown ids are ignored (the session may have been evicted).
  void close_session(SessionId id);
  /// The monitor (decision state + statistics) of a live session.
  const RuntimeMonitor& session_monitor(SessionId id) const;
  /// The timeseries buffer of a live session.
  const TimeseriesBuffer& session_buffer(SessionId id) const;

  // -- streaming ----------------------------------------------------------
  /// Full evaluation of one frame: DDM + stateless QIM (+ scope), buffer
  /// push, information fusion, all estimators, monitor decision. Stepping
  /// an unknown id implicitly opens it (a session may have been evicted
  /// under memory pressure; streaming must keep working).
  EngineStepResult step(SessionId id, const data::FrameRecord& frame,
                        const sim::SignLocation* location = nullptr);
  /// Allocation-light variant reusing `result`'s buffers.
  void step_into(SessionId id, const data::FrameRecord& frame,
                 const sim::SignLocation* location, EngineStepResult& result);

  /// Replay path: skips the DDM and stateless QIM and feeds precomputed
  /// interim results (outcome o_i, stateless uncertainty u_i, stateless
  /// QFs) straight into the session - used to re-evaluate recorded traces
  /// without re-rendering frames.
  EngineStepResult step_precomputed(SessionId id,
                                    std::span<const double> stateless_qfs,
                                    std::size_t outcome, double uncertainty);
  void step_precomputed_into(SessionId id,
                             std::span<const double> stateless_qfs,
                             std::size_t outcome, double uncertainty,
                             EngineStepResult& result);

  /// Batched hot path: steps every (session, frame) pair in order, reusing
  /// `results` (and each element's estimate vector) across calls.
  void step_batch(std::span<const SessionFrame> frames,
                  std::vector<EngineStepResult>& results);

  // -- monitor feedback ---------------------------------------------------
  /// Ground-truth feedback for a session's previous decision.
  void report_outcome(SessionId id, MonitorDecision decision, bool failure);
  /// Monitor statistics aggregated over all live, closed, and evicted
  /// sessions.
  MonitorStats total_monitor_stats() const noexcept;

 private:
  struct Session {
    TimeseriesBuffer buffer;
    UncertaintyFusionAccumulator uf;
    RuntimeMonitor monitor;
    std::list<SessionId>::iterator lru_it;  ///< position in lru_
  };

  /// Looks up `id`, creating (and possibly evicting) as needed, and marks
  /// it most recently used.
  Session& touch(SessionId id, bool& created);
  Session& create_session(SessionId id);
  void validate_external_id(SessionId id) const;
  void evict_lru(SessionId keep);
  const Session& session_at(SessionId id) const;
  void step_common(SessionId id, Session& session,
                   std::span<const double> stateless_qfs, std::size_t outcome,
                   double ddm_confidence, double uncertainty,
                   EngineStepResult& result);

  EngineComponents components_;
  EngineConfig config_;
  std::vector<std::shared_ptr<UncertaintyEstimator>> estimators_;
  std::size_t primary_ = 0;
  /// Auto-assigned ids live in their own namespace so they never collide
  /// with caller-chosen ids (which should stay below this bit).
  static constexpr SessionId kAutoSessionBit = SessionId{1} << 63;

  std::unordered_map<SessionId, Session> sessions_;
  std::list<SessionId> lru_;  ///< front = most recently used
  SessionId next_auto_id_ = kAutoSessionBit | 1;
  MonitorStats retired_;  ///< folded stats of closed/evicted sessions
  std::vector<double> qf_scratch_;
};

}  // namespace tauw::core
