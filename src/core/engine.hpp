#pragma once
// Session-oriented uncertainty engine - the streaming, multi-track front
// door of the library.
//
// The paper's taUW (Fig. 2) is a streaming component: per-step outcomes flow
// through a timeseries buffer into fused uncertainties. The legacy wrappers
// (`UncertaintyWrapper`, `TimeseriesAwareWrapper`) support one series at a
// time and borrow their components by raw pointer; the Engine replaces both
// limitations:
//
//   * it OWNS its components via shared_ptr/value semantics (no lifetime
//     contracts for callers to get wrong),
//   * it manages many concurrent series keyed by SessionId (open / step /
//     close, with an optional LRU cap so memory stays bounded under heavy
//     multi-user traffic),
//   * it evaluates a polymorphic registry of UncertaintyEstimators - the
//     stateless UW, the three UF baselines, and the taUW - on every step,
//   * each session carries its own RuntimeMonitor accept/fallback state,
//   * `step_batch` processes a whole frame of SessionFrames while reusing
//     scratch and result buffers (the hot path).
//
// -- Threading model ---------------------------------------------------------
//
// Sessions are partitioned across `EngineConfig::num_shards` shards by
// `hash(SessionId) % num_shards`. Each shard owns its session map, LRU list,
// retired-statistics aggregate, QF scratch buffer, and its own clones of the
// estimator registry, so a step never touches state outside its shard; one
// mutex per shard makes `open_session` / `step` / `close_session` /
// `report_outcome` / stats safe to call from any thread. The fitted
// components (DDM, QIM, taQIM, fusion, scope) are shared across shards -
// they are immutable after construction and only called through const
// methods.
//
// `step_batch` groups the batch by shard and - when `num_threads > 1` -
// dispatches the per-shard groups to an internal worker pool (one shard is
// only ever processed by one worker at a time, so the hot path stays
// lock-free *within* a shard). In-batch order is preserved per session, and
// per-session outputs are bit-identical for every (num_shards, num_threads)
// configuration: estimates depend only on per-session state, the frame, and
// immutable models. The 1-shard/1-thread default runs the exact serial path
// of the single-threaded engine.
//
// Within a shard group, step_batch runs COLUMNAR: it first commits every
// step's evidence (QF extraction, DDM, stateless QIM, buffer push, fusion),
// then evaluates each estimator once over the whole run via
// estimate_batch() - the taUW routes the full run through the compiled
// taQIM in one level-synchronous pass instead of one pointer-tree walk per
// step. A run flushes early only when a session appears twice in the same
// group, so every estimate still sees exactly its own step's state;
// results stay bit-identical to the per-step path.
//
// -- Model hot-swap ----------------------------------------------------------
//
// `swap_models(qim, taqim)` atomically publishes a recalibrated model
// generation (Clopper-Pearson bounds drift as calibration data accrues;
// serving must not drain sessions to pick up the refit). Each shard holds a
// shared_ptr to an immutable ModelSet that steps read under the shard
// mutex; the swap validates the new models up front, then republishes the
// pointer shard by shard (RCU under the existing locks). In-flight steps
// finish on the generation they started with, every EngineStepResult
// reports the generation that produced it, and EngineStats reports the
// currently published generation. Sessions, buffers, and monitor state
// survive the swap untouched. The DDM, QF extractor, fusion rule, and
// scope model are not swappable - they define the wrapped system itself,
// not the calibration.
//
// -- Online calibration hooks ------------------------------------------------
//
// The engine is the evidence source of the online calibration plane (see
// calib/): when an EvidenceSink is attached (`set_evidence_sink`), every
// step additionally captures its stateless QF row in the session, and
// `report_truth(id, true_label)` - the ground-truth feedback path -
// rebuilds the step's taQIM feature row (the buffer still holds that
// step's state) and emits one EvidenceObservation (rows, isolated/fused
// failure, serving generation) into the sink under the shard mutex.
// `current_models()` exposes the currently published (QIM, taQIM)
// generation so a background recalibrator can monitor and refresh exactly
// what serving traffic reads. Evidence for sessions that were closed or
// evicted before the (possibly delayed) truth arrived is dropped - the
// calibration loop is statistical, not transactional.
//
// What is NOT thread-safe: the references returned by `session_monitor` /
// `session_buffer` require that no other thread mutates that session
// concurrently (steps it, closes it, or evicts it by opening others).
//
// -- Static enforcement ------------------------------------------------------
//
// Every rule above is machine-checked: the shard mutexes, the swap lock,
// and the pool handshake are tauw::Mutex capabilities
// (support/mutex.hpp), guarded members carry TAUW_GUARDED_BY, and every
// *_locked helper declares TAUW_REQUIRES(shard.mutex). Clang's
// -Wthread-safety pass (CI job `clang-thread-safety`) rejects any access
// to guarded state without its mutex at compile time. Lock order:
// swap_mutex_ -> shard.mutex (stats() and swap_models hold the swap lock
// across the shard walk); batch_mutex_ -> pool_mutex_; shard mutexes are
// leaf locks (nothing else is acquired under them - the evidence sink's
// lane mutex is the one documented exception, and it is always the
// innermost lock).
//
// Sessions map 1:1 to tracked physical objects; see
// tracking/engine_bridge.hpp for the tracker integration that opens and
// closes sessions automatically.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "core/evidence_sink.hpp"
#include "core/fusion.hpp"
#include "core/monitor.hpp"
#include "core/quality_factors.hpp"
#include "core/quality_impact_model.hpp"
#include "core/scope_model.hpp"
#include "core/ta_quality_factors.hpp"
#include "core/wrapper.hpp"
#include "data/timeseries.hpp"
#include "ml/classifier.hpp"
#include "support/arena.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace tauw::core {

/// Identifies one concurrent timeseries (e.g. one tracked sign, one user
/// stream). Ids are chosen by the caller (below 2^63) or auto-assigned by
/// open_session() from a disjoint namespace (top bit set), so external ids
/// - e.g. tracker series ids - never collide with auto-assigned sessions.
using SessionId = std::uint64_t;

/// The components an Engine evaluates. All are owned (shared_ptr or value);
/// copying an EngineComponents is cheap and shares the underlying models.
/// The shared models are immutable after fitting, so every engine shard (and
/// every engine) may evaluate them concurrently.
struct EngineComponents {
  /// The wrapped DDM. Required for step(); replay-only engines (that only
  /// ever call step_precomputed) may leave it null. Must be safe to call
  /// predict() on concurrently (true for anything without mutable state).
  std::shared_ptr<const ml::Classifier> ddm;
  /// Stateless quality-factor extractor (value type).
  QualityFactorExtractor qf_extractor{};
  /// Fitted stateless QIM. Required for step(); optional for replay-only.
  std::shared_ptr<const QualityImpactModel> qim;
  /// Fitted timeseries-aware QIM; null disables the taUW estimator.
  std::shared_ptr<const QualityImpactModel> taqim;
  /// The taQF subset the taQIM was fitted with - a property of the model,
  /// carried alongside it so component sets stay self-consistent.
  TaqfSet taqfs = TaqfSet::all();
  /// Information-fusion rule; null defaults to majority voting.
  std::shared_ptr<const InformationFusion> fusion;
  /// Optional scope compliance model (combined when a location is given).
  std::optional<ScopeComplianceModel> scope{};
};

struct EngineConfig {
  /// Maximum number of live sessions; opening more evicts the least
  /// recently stepped session (its monitor statistics are folded into the
  /// retired aggregate; its buffer and hysteresis mode are dropped - an
  /// evicted session stepped again starts as a fresh series). 0 =
  /// unbounded. Sharded engines split the cap into per-shard budgets of
  /// ceil(max_sessions / num_shards) each (eviction never crosses shards),
  /// so the live total may exceed max_sessions by up to num_shards - 1.
  std::size_t max_sessions = 1024;
  /// Per-session timeseries buffer bound (0 = unbounded, the paper's
  /// setting; series end via the tracker). When bounded, the UF baselines
  /// are windowed to the buffer contents as well, so all estimates and the
  /// fused outcome cover the same evidence.
  std::size_t buffer_capacity = 0;
  /// Per-session runtime-monitor configuration.
  MonitorConfig monitor{};
  /// Cross-shard LRU pressure balancing: the number of sessions a shard may
  /// hold BEYOND its per-shard budget by borrowing unused budget from cold
  /// shards (0 disables borrowing - the strict per-shard behavior). A
  /// borrow is granted only while the engine-wide live total is within
  /// max_sessions, so a hash-skewed workload keeps its hot sessions instead
  /// of evicting them while other shards sit half empty; once every shard
  /// is loaded, the global check fails and the hot shard falls back to
  /// local LRU eviction. Accounting is deterministic: a shard's borrowed
  /// count is exactly max(0, live - budget) at all times, and borrowed
  /// slots return as soon as the shard shrinks back to budget.
  std::size_t max_borrowed_sessions = 0;
  /// Number of session shards (>= 1; 0 is treated as 1). More shards mean
  /// less lock contention and more step_batch parallelism; a good default
  /// under threading is 2-4x num_threads.
  std::size_t num_shards = 1;
  /// Worker threads step_batch fans per-shard groups out to (>= 1; 0 is
  /// treated as 1). 1 = no pool, step_batch runs on the caller's thread.
  /// The calling thread always participates, so `num_threads - 1` workers
  /// are spawned.
  std::size_t num_threads = 1;
  /// Pin each spawned worker thread to one CPU (worker t -> cpus[t % n]
  /// over the process affinity mask, see support/affinity.hpp) so shard
  /// groups keep their cache residency instead of migrating across cores.
  /// The calling thread is never pinned (the engine does not own it). A
  /// no-op on platforms without affinity support; EngineStats::worker_cpus
  /// reports what actually got pinned.
  bool pin_worker_threads = false;
};

/// One (session, frame) pair of a batched step.
struct SessionFrame {
  SessionId session = 0;
  const data::FrameRecord* frame = nullptr;
  /// Optional sign location for the scope model.
  const sim::SignLocation* location = nullptr;
};

/// The (QIM, taQIM) pair the engine currently serves (current_models()).
/// The models are immutable; holding the shared_ptrs keeps the generation
/// alive across a concurrent swap.
struct EngineModels {
  std::shared_ptr<const QualityImpactModel> qim;
  std::shared_ptr<const QualityImpactModel> taqim;
  std::uint64_t generation = 1;
};

/// Aggregate engine health counters (stats()).
///
/// Consistency model: stats() holds the swap serialization lock while it
/// visits every shard under that shard's mutex in one pass, so (a) the
/// reported model generation is exactly what every shard serves for the
/// whole snapshot (a swap cannot publish mid-visit), and (b) each shard's
/// counters are internally coherent (no torn live/retired split). Counters
/// of *different* shards are taken at slightly different instants, so under
/// concurrent stepping the cross-shard sums are a consistent-per-shard
/// snapshot, not a global stop-the-world one.
struct EngineStats {
  /// The currently published model generation (1 until the first swap;
  /// swap_models bumps it engine-wide).
  std::uint64_t model_generation = 1;
  std::uint64_t model_swaps = 0;  ///< completed swap_models calls
  std::size_t live_sessions = 0;
  /// Sessions currently held beyond their shard's budget via cross-shard
  /// borrowing (see EngineConfig::max_borrowed_sessions).
  std::size_t borrowed_sessions = 0;
  MonitorStats monitor;  ///< aggregate over live, closed, evicted sessions
  /// CPU each spawned worker thread is pinned to, in worker order. Empty
  /// when EngineConfig::pin_worker_threads is off, the platform has no
  /// affinity support, or the engine runs without a pool (num_threads <= 1).
  std::vector<int> worker_cpus;
};

/// Everything the engine produces for one step of one session.
struct EngineStepResult {
  SessionId session = 0;
  UncertainOutcome isolated{};    ///< o_i and stateless u_i
  std::size_t fused_label = 0;    ///< o_i^(if)
  /// Evidence steps in the session's buffer: i + 1 for unbounded sessions,
  /// saturating at EngineConfig::buffer_capacity for bounded ones.
  std::size_t series_length = 0;
  /// One estimate per registered estimator (Engine::num_estimators()),
  /// in registry order.
  std::vector<double> estimates;
  /// The session monitor's verdict on the primary estimate.
  MonitorDecision decision = MonitorDecision::kAccept;
  /// True when this step implicitly created the session - it was never
  /// opened, or was LRU-evicted (possibly earlier in the same batch).
  /// Consumers relying on continuous series should watch this flag.
  bool new_session = false;
  /// The model generation (see Engine::swap_models) this step was evaluated
  /// under. Every step is attributable to exactly one generation.
  std::uint64_t model_generation = 0;
};

class Engine {
 public:
  explicit Engine(EngineComponents components, EngineConfig config = {});
  ~Engine();

  // Neither copyable nor movable: shards carry mutexes and the worker pool
  // holds threads with `this` captured. Pass engines by reference.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  /// The components the engine was constructed with. After swap_models the
  /// qim/taqim here are the INITIAL generation, not the serving one.
  const EngineComponents& components() const noexcept { return components_; }
  const EngineConfig& config() const noexcept { return config_; }

  // -- sharding -----------------------------------------------------------
  std::size_t num_shards() const noexcept { return shards_.size(); }
  /// The shard a session id maps to: hash(id) % num_shards. Stable for the
  /// lifetime of the engine.
  std::size_t shard_of(SessionId id) const noexcept;

  // -- estimator registry -------------------------------------------------
  /// Number of registered estimators (= EngineStepResult::estimates size).
  /// Thread-safe. (The old `estimators()` span accessor leaked shard 0's
  /// registry past its mutex - the thread-safety analysis cannot prove
  /// anything about an escaped span, so it was replaced by this counter;
  /// per-estimator metadata goes through estimator_names().)
  std::size_t num_estimators() const;
  std::vector<std::string> estimator_names() const;
  /// Index into EngineStepResult::estimates; throws if unknown.
  std::size_t estimator_index(std::string_view name) const;
  /// The estimate the per-session monitor decides on: "tauw" when a taQIM
  /// is configured, otherwise "worst_case" (the conservative baseline).
  std::size_t primary_index() const noexcept { return primary_; }
  /// Registers an additional estimator (evaluated after the defaults). Its
  /// estimate() must not throw - see UncertaintyEstimator's contract. On a
  /// sharded engine the estimator must support clone() (each shard gets its
  /// own instance); shard 0 keeps the passed instance. The registries are
  /// mutated under the shard mutexes, so registering while other threads
  /// step or swap is memory-safe; steps of the same batch may still observe
  /// different estimate counts, so registering before serving remains the
  /// sensible deployment order.
  void add_estimator(std::shared_ptr<UncertaintyEstimator> estimator);

  // -- session management (thread-safe) -----------------------------------
  /// Opens a fresh session under an auto-assigned id.
  SessionId open_session();
  /// Opens (or resets) the session with the given id.
  void open_session(SessionId id);
  bool has_session(SessionId id) const;
  /// Live sessions across all shards. Under concurrent mutation the count
  /// is a consistent-per-shard snapshot.
  std::size_t session_count() const;
  /// Closes a session, folding its monitor statistics into the retired
  /// aggregate. Unknown ids are ignored (the session may have been evicted).
  void close_session(SessionId id);
  /// The monitor (decision state + statistics) of a live session. The
  /// reference is only safe to read while no other thread mutates this
  /// session (steps it, closes it, or evicts it by opening others).
  const RuntimeMonitor& session_monitor(SessionId id) const;
  /// The timeseries buffer of a live session (same caveat as
  /// session_monitor; additionally, TimeseriesBuffer::entries() may compact
  /// the ring in place, so even concurrent const access to one session's
  /// buffer from several threads needs external synchronization).
  const TimeseriesBuffer& session_buffer(SessionId id) const;

  // -- streaming (thread-safe) ---------------------------------------------
  /// Full evaluation of one frame: DDM + stateless QIM (+ scope), buffer
  /// push, information fusion, all estimators, monitor decision. Stepping
  /// an unknown id implicitly opens it (a session may have been evicted
  /// under memory pressure; streaming must keep working).
  EngineStepResult step(SessionId id, const data::FrameRecord& frame,
                        const sim::SignLocation* location = nullptr);
  /// Allocation-light variant reusing `result`'s buffers.
  void step_into(SessionId id, const data::FrameRecord& frame,
                 const sim::SignLocation* location, EngineStepResult& result);

  /// Replay path: skips the DDM and stateless QIM and feeds precomputed
  /// interim results (outcome o_i, stateless uncertainty u_i, stateless
  /// QFs) straight into the session - used to re-evaluate recorded traces
  /// without re-rendering frames.
  EngineStepResult step_precomputed(SessionId id,
                                    std::span<const double> stateless_qfs,
                                    std::size_t outcome, double uncertainty);
  void step_precomputed_into(SessionId id,
                             std::span<const double> stateless_qfs,
                             std::size_t outcome, double uncertainty,
                             EngineStepResult& result);

  /// Batched hot path: groups the (session, frame) pairs by shard and steps
  /// each shard's group in input order - on the worker pool when
  /// `num_threads > 1`, inline otherwise. `results` (and each element's
  /// estimate vector) is reused across calls and aligns index-for-index
  /// with `frames`. Concurrent step_batch calls are safe; they serialize on
  /// the pool.
  void step_batch(std::span<const SessionFrame> frames,
                  std::vector<EngineStepResult>& results);

  /// Columnar single-shard entry point for external schedulers (the serve/
  /// traffic plane): steps a group of frames that ALL map to `shard_index`
  /// (throws std::invalid_argument otherwise) through the same columnar
  /// staged path step_batch uses, on the caller's thread, without touching
  /// the engine-wide batch mutex or worker pool. Callers draining different
  /// shards therefore run fully in parallel, serializing only against
  /// direct traffic to the same shard. Results are bit-identical to step()
  /// / step_batch() for the same per-session frame order.
  void step_shard_batch(std::size_t shard_index,
                        std::span<const SessionFrame> frames,
                        std::vector<EngineStepResult>& results);

  // -- model hot-swap (thread-safe) ----------------------------------------
  /// Publishes a recalibrated (QIM, taQIM) generation without draining
  /// sessions. `qim` must be fitted with the engine's QF-extractor feature
  /// count; `taqim` must be fitted against the same taQF configuration when
  /// the engine was built with one, and null when it was not (the estimator
  /// registry cannot change shape mid-flight). Validates everything up
  /// front, then publishes shard by shard under the shard mutexes: steps
  /// already holding a shard lock finish on their old generation, every
  /// later step sees the new one, and each EngineStepResult carries the
  /// generation that produced it. Estimators are rebound via
  /// UncertaintyEstimator::rebind_models. Concurrent swappers serialize;
  /// generations are monotonic.
  void swap_models(std::shared_ptr<const QualityImpactModel> qim,
                   std::shared_ptr<const QualityImpactModel> taqim);
  /// The currently published model generation (1 before any swap).
  std::uint64_t model_generation() const;
  /// The currently published models (shard 0's view; during a swap other
  /// shards may briefly serve the adjacent generation). The calibration
  /// plane recalibrates against exactly this pair.
  EngineModels current_models() const;

  // -- calibration evidence (thread-safe) ----------------------------------
  /// Attaches (or, with nullptr, detaches) the sink that receives one
  /// EvidenceObservation per report_truth() call. While a sink is attached
  /// every step additionally copies its stateless QF row into the session
  /// (the taQF row is rebuilt lazily at report time); without one the
  /// capture is skipped entirely. The sink is published per shard under
  /// the shard mutexes, so attaching mid-traffic is safe; steps already
  /// holding a shard lock finish under the previous sink.
  void set_evidence_sink(std::shared_ptr<EvidenceSink> sink);
  /// Detaches `sink` only where it is still the attached one; a different
  /// sink installed later is left in place (so tearing down a retired
  /// calibration plane never clobbers its replacement).
  void detach_evidence_sink(const EvidenceSink* sink);

  // -- monitor feedback (thread-safe) --------------------------------------
  /// Ground-truth feedback for a session's previous decision.
  void report_outcome(SessionId id, MonitorDecision decision, bool failure);
  /// Ground-truth feedback by label: resolves the session's last step
  /// against `true_label`, feeds the monitor (fused-outcome failure, the
  /// decision the step actually took), and - when an evidence sink is
  /// attached - records the step's feature rows with both failure
  /// indicators and the serving generation. The attribution is consumed:
  /// an at-least-once truth feed (retries, duplicate confirmations) counts
  /// each step once. Unknown ids (closed or evicted sessions), sessions
  /// that never stepped, and already-consumed steps are ignored.
  void report_truth(SessionId id, std::size_t true_label);
  /// Monitor statistics aggregated over all live, closed, and evicted
  /// sessions.
  MonitorStats total_monitor_stats() const;
  /// Aggregate health counters: generation, swap count, live sessions, and
  /// the monitor aggregate - taken as a coherent snapshot (per-shard
  /// counters under each shard mutex in one pass, model generation pinned
  /// for the whole visit; see EngineStats for the exact consistency model).
  EngineStats stats() const;

 private:
  struct Session {
    /// The session's evidence window. Carries the streaming aggregates
    /// (per-outcome stats, UF window state) every estimator and the fusion
    /// rule read in O(1) - there is no separate accumulator to rebuild.
    TimeseriesBuffer buffer;
    RuntimeMonitor monitor;
    std::list<SessionId>::iterator lru_it;  ///< position in Shard::lru
    /// The BatchScratch::run_id this session was last staged under -
    /// repeat detection in the columnar batch path without a per-step
    /// hash-set insert (which costs a heap allocation per entry).
    std::uint64_t staged_mark = 0;
    // -- last-step attribution (report_truth / evidence capture) ----------
    std::size_t last_isolated_label = 0;
    std::size_t last_fused_label = 0;
    MonitorDecision last_decision = MonitorDecision::kAccept;
    std::uint64_t last_generation = 0;
    /// Cleared when report_truth consumes the step (and on series restart).
    bool has_last_step = false;
    /// True when last_qfs was captured for the last step (a sink was
    /// attached when it committed) - guards against pairing a fresh
    /// outcome with stale feature rows after a mid-session attach.
    bool last_evidence_valid = false;
    std::vector<double> last_qfs;  ///< stateless QF row of the last step
    std::vector<double> last_ta;   ///< report_truth's taQF rebuild scratch
  };

  /// One published model generation. Immutable once built; shards hold a
  /// shared_ptr replaced under the shard mutex (RCU: readers that loaded
  /// the old set keep it alive until they drop the reference).
  struct ModelSet {
    std::shared_ptr<const QualityImpactModel> qim;
    std::shared_ptr<const QualityImpactModel> taqim;
    std::uint64_t generation = 1;
  };

  /// Per-shard scratch for the columnar step_batch path: staged QF rows,
  /// estimation contexts, and the estimator-major estimate matrix of the
  /// current run. Lives in the shard (used under its mutex only).
  ///
  /// The per-group arrays (qf_matrix, predictions, stateless_u) are carved
  /// from a monotonic arena reset at the start of each group run: after the
  /// first group of the high-water shape, every later reset is a pointer
  /// rewind and the group setup performs zero heap allocations. The
  /// run-scoped vectors below (contexts, estimate_matrix, ...) retain their
  /// capacity across runs instead - they are appended to across flushes
  /// within one group, which a monotonic arena cannot model.
  struct BatchScratch {
    support::MonotonicArena arena;  ///< backs the per-group spans below
    std::span<double> qf_matrix;  ///< group_size x num_factors, row-stable
    /// Per-group DDM predictions and batched stateless-QIM uncertainties,
    /// evaluated for the whole shard group up front (one predict_batch pass
    /// through the compiled tree instead of one route per step).
    /// predictions stays a capacity-retaining vector - ml::Prediction owns
    /// a class_probs vector, which the arena (trivial types only) cannot
    /// hold.
    std::vector<ml::Prediction> predictions;
    std::span<double> stateless_u;
    std::size_t next_row = 0;
    std::vector<EstimationContext> contexts;
    std::vector<Session*> run_sessions;
    std::vector<EngineStepResult*> run_results;
    /// Current run number; sessions staged in this run carry it in their
    /// staged_mark. Bumped on every flush, never reused (uint64). Starts
    /// at 1 so a fresh session's zero-initialized mark never matches.
    std::uint64_t run_id = 1;
    std::vector<double> estimate_matrix;  ///< num_estimators x run length
    /// Identity index list scratch for step_shard_batch (a contiguous
    /// group is "indices 0..n-1 of the span").
    std::vector<std::size_t> iota;
  };

  /// One shard: a self-contained slice of the session space. All mutable
  /// state a step touches lives here, guarded by `mutex` (step_batch takes
  /// it once per shard group). Heap-allocated (unique_ptr) so shards never
  /// share a cache line and the mutex never moves.
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<SessionId, Session> sessions TAUW_GUARDED_BY(mutex);
    /// front = most recently used
    std::list<SessionId> lru TAUW_GUARDED_BY(mutex);
    /// folded stats of closed/evicted sessions
    MonitorStats retired TAUW_GUARDED_BY(mutex);
    std::size_t max_sessions = 0;  ///< per-shard LRU budget (0 = unbounded;
                                   ///< const after construction)
    /// Sessions currently held beyond max_sessions via cross-shard budget
    /// borrowing; invariant (borrowing enabled): exactly
    /// max(0, sessions.size() - max_sessions).
    std::size_t borrowed TAUW_GUARDED_BY(mutex) = 0;
    /// Per-shard estimator clones - estimators may keep scratch buffers,
    /// so sharing instances across concurrently stepping shards would race.
    std::vector<std::shared_ptr<UncertaintyEstimator>> estimators
        TAUW_GUARDED_BY(mutex);
    std::vector<double> qf_scratch TAUW_GUARDED_BY(mutex);
    /// The model generation this shard currently serves (see swap_models).
    std::shared_ptr<const ModelSet> models TAUW_GUARDED_BY(mutex);
    /// Evidence sink of the online calibration plane (null: capture off).
    std::shared_ptr<EvidenceSink> sink TAUW_GUARDED_BY(mutex);
    BatchScratch batch TAUW_GUARDED_BY(mutex);
    /// Session-churn pools: closed/evicted sessions park their map node
    /// (with the Session's buffer ring, QF rows, and taQF scratch capacity
    /// intact) and their LRU list node here, and create_session() reuses
    /// them - steady-state open/close churn performs zero heap allocations
    /// once the pools are warm. Bounded so a one-off session spike cannot
    /// pin its peak memory forever.
    std::vector<std::unordered_map<SessionId, Session>::node_type>
        session_spares TAUW_GUARDED_BY(mutex);
    std::list<SessionId> lru_spares TAUW_GUARDED_BY(mutex);
  };

  /// One step_batch work item: a shard plus the batch indices routed to it.
  struct ShardTask {
    Shard* shard = nullptr;
    const std::vector<std::size_t>* indices = nullptr;
  };

  /// One in-flight step_batch, shared with the workers. Each batch gets its
  /// own state object so a worker that wakes late simply drains an already
  /// exhausted cursor instead of racing the next batch's bookkeeping. The
  /// task list is immutable once published; `remaining` and `error` are
  /// guarded by pool_mutex_ (comment-only: guarded_by cannot name an outer
  /// class's member from a nested struct, and BatchState objects outlive
  /// no lock - the handshake in engine.cpp touches them only under
  /// pool_mutex_, which the analysis checks at those sites).
  struct BatchState {
    std::vector<ShardTask> tasks;
    std::span<const SessionFrame> frames;
    std::vector<EngineStepResult>* results = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  using SessionMap = std::unordered_map<SessionId, Session>;

  Shard& shard_for(SessionId id) noexcept {
    return *shards_[shard_of(id)];
  }
  const Shard& shard_for(SessionId id) const noexcept {
    return *shards_[shard_of(id)];
  }

  // Per-shard session bookkeeping; callers hold shard.mutex (the
  // TAUW_REQUIRES contracts below make "callers hold shard.mutex"
  // compile-checked rather than aspirational).
  Session& touch(Shard& shard, SessionId id, bool& created)
      TAUW_REQUIRES(shard.mutex);
  /// touch() with the map lookup already done (`it` from shard.sessions;
  /// must still be current - no insert/erase since the find).
  Session& touch_at(Shard& shard, SessionId id, SessionMap::iterator it,
                    bool& created) TAUW_REQUIRES(shard.mutex);
  Session& create_session(Shard& shard, SessionId id)
      TAUW_REQUIRES(shard.mutex);
  /// Returns a pooled Session (node) to its fresh-session state while
  /// keeping every heap capacity it accumulated (buffer ring, QF rows).
  void reset_session(Session& session) const;
  void validate_external_id(SessionId id) const;
  void evict_lru(Shard& shard, SessionId keep) TAUW_REQUIRES(shard.mutex);
  void close_session_locked(Shard& shard, SessionId id)
      TAUW_REQUIRES(shard.mutex);
  const Session& session_at(const Shard& shard, SessionId id) const
      TAUW_REQUIRES(shard.mutex);

  // Step internals; callers hold shard.mutex.
  /// Commits the step's evidence (buffer + UF push, fusion) and fills every
  /// non-estimator result field; returns the context estimators read.
  EstimationContext commit_step(Shard& shard, SessionId id, Session& session,
                                std::span<const double> stateless_qfs,
                                std::size_t outcome, double ddm_confidence,
                                double uncertainty, EngineStepResult& result)
      TAUW_REQUIRES(shard.mutex);
  void step_common(Shard& shard, SessionId id, Session& session,
                   std::span<const double> stateless_qfs, std::size_t outcome,
                   double ddm_confidence, double uncertainty,
                   EngineStepResult& result) TAUW_REQUIRES(shard.mutex);
  void step_frame_locked(Shard& shard, SessionId id,
                         const data::FrameRecord& frame,
                         const sim::SignLocation* location,
                         EngineStepResult& result) TAUW_REQUIRES(shard.mutex);
  /// Columnar batch internals: run_shard_task first evaluates every
  /// session-independent stage for the whole group (QF extraction, DDM,
  /// one batched stateless-QIM pass); stage then commits one step into the
  /// current run from those precomputed rows (deferring estimators +
  /// monitor), and flush evaluates each estimator once over the whole run
  /// via estimate_batch and resolves monitor decisions. `it` is the
  /// caller's repeat/eviction-detection lookup of `id`, reused so the hot
  /// path pays one hash probe per step instead of two.
  void stage_step_locked(Shard& shard, SessionId id,
                         SessionMap::iterator it,
                         const data::FrameRecord& frame,
                         const sim::SignLocation* location,
                         EngineStepResult& result) TAUW_REQUIRES(shard.mutex);
  void flush_run(Shard& shard) TAUW_REQUIRES(shard.mutex);
  /// The shared columnar group runner behind step_batch's per-shard tasks
  /// and step_shard_batch: steps frames[indices...] (in index order, all
  /// mapping to `shard`) into results[indices...]. Caller holds shard.mutex.
  void run_group_locked(Shard& shard, std::span<const SessionFrame> frames,
                        std::span<const std::size_t> indices,
                        std::vector<EngineStepResult>& results)
      TAUW_REQUIRES(shard.mutex);

  // Worker pool (see engine.cpp for the dispatch protocol).
  void worker_loop();
  void drain_tasks(BatchState& state);
  void run_shard_task(const BatchState& state, const ShardTask& task);
  /// Recycles a BatchState whose workers have all dropped their references
  /// (use_count() == 1: only the pool holds it), or grows the pool. The
  /// task list's capacity survives recycling, so steady-state step_batch
  /// calls allocate nothing here.
  std::shared_ptr<BatchState> take_batch_state() TAUW_REQUIRES(batch_mutex_);

  EngineComponents components_;
  EngineConfig config_;
  std::size_t primary_ = 0;
  /// Builds the taQIM feature row captured as calibration evidence (only
  /// when a sink is attached). Stateless and const after construction, so
  /// one instance serves every shard. Empty when the engine has no taQIM.
  std::optional<TaFeatureBuilder> ta_builder_;
  /// Auto-assigned ids live in their own namespace so they never collide
  /// with caller-chosen ids (which should stay below this bit).
  static constexpr SessionId kAutoSessionBit = SessionId{1} << 63;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<SessionId> next_auto_id_{kAutoSessionBit | 1};
  /// Engine-wide live-session count, maintained on every create/close under
  /// the owning shard's mutex. Only consulted by the cross-shard borrowing
  /// check (an over-budget creation may keep its session while the global
  /// total is within max_sessions), so the strict-budget default never pays
  /// more than the two uncontended atomic ops.
  std::atomic<std::size_t> global_live_{0};

  /// Serializes swap_models callers so generations publish monotonically;
  /// stats() holds it too, pinning the published generation for the whole
  /// snapshot (mutable: snapshotting is logically const). Lock order:
  /// acquired before the shard mutexes; never the other way around. (The
  /// shard mutexes live behind a dynamic unique_ptr vector, so the ordering
  /// is not expressible as a TAUW_ACQUIRED_BEFORE list; it is enforced by
  /// the REQUIRES-free shard walk in swap_models/stats.)
  mutable Mutex swap_mutex_;
  /// Highest generation number ever handed out. A failed swap still
  /// consumes its number, so two different model sets can never share a
  /// generation.
  std::uint64_t next_generation_ TAUW_GUARDED_BY(swap_mutex_) = 1;
  /// The last fully published generation (what stats report).
  std::atomic<std::uint64_t> published_generation_{1};
  std::atomic<std::uint64_t> model_swaps_{0};

  // -- step_batch dispatch state -------------------------------------------
  /// Serializes step_batch callers (the pool handles one batch at a time);
  /// also guards group_scratch_. Acquired before pool_mutex_ (the
  /// publish/wait handshake runs under both) - machine-checked under
  /// -Wthread-safety-beta.
  Mutex batch_mutex_ TAUW_ACQUIRED_BEFORE(pool_mutex_);
  std::vector<std::vector<std::size_t>> group_scratch_
      TAUW_GUARDED_BY(batch_mutex_);
  /// BatchState pool (see take_batch_state). Stabilizes at one state once
  /// the workers of the previous batch have quiesced.
  std::vector<std::shared_ptr<BatchState>> batch_pool_
      TAUW_GUARDED_BY(batch_mutex_);
  /// Pool handshake: a new BatchState is published under pool_mutex_ by
  /// bumping epoch_; workers snapshot the shared_ptr, claim tasks via the
  /// state's atomic cursor, and report completion under pool_mutex_.
  Mutex pool_mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::uint64_t epoch_ TAUW_GUARDED_BY(pool_mutex_) = 0;
  bool shutdown_ TAUW_GUARDED_BY(pool_mutex_) = false;
  std::shared_ptr<BatchState> current_batch_ TAUW_GUARDED_BY(pool_mutex_);
  std::vector<std::thread> workers_;
  /// CPU each worker was pinned to (EngineConfig::pin_worker_threads);
  /// written once in the constructor, read-only afterwards.
  std::vector<int> worker_cpus_;
};

}  // namespace tauw::core
