#pragma once
// Session-oriented uncertainty engine - the streaming, multi-track front
// door of the library.
//
// The paper's taUW (Fig. 2) is a streaming component: per-step outcomes flow
// through a timeseries buffer into fused uncertainties. The legacy wrappers
// (`UncertaintyWrapper`, `TimeseriesAwareWrapper`) support one series at a
// time and borrow their components by raw pointer; the Engine replaces both
// limitations:
//
//   * it OWNS its components via shared_ptr/value semantics (no lifetime
//     contracts for callers to get wrong),
//   * it manages many concurrent series keyed by SessionId (open / step /
//     close, with an optional LRU cap so memory stays bounded under heavy
//     multi-user traffic),
//   * it evaluates a polymorphic registry of UncertaintyEstimators - the
//     stateless UW, the three UF baselines, and the taUW - on every step,
//   * each session carries its own RuntimeMonitor accept/fallback state,
//   * `step_batch` processes a whole frame of SessionFrames while reusing
//     scratch and result buffers (the hot path).
//
// -- Threading model ---------------------------------------------------------
//
// Sessions are partitioned across `EngineConfig::num_shards` shards by
// `hash(SessionId) % num_shards`. Each shard owns its session map, LRU list,
// retired-statistics aggregate, QF scratch buffer, and its own clones of the
// estimator registry, so a step never touches state outside its shard; one
// mutex per shard makes `open_session` / `step` / `close_session` /
// `report_outcome` / stats safe to call from any thread. The fitted
// components (DDM, QIM, taQIM, fusion, scope) are shared across shards -
// they are immutable after construction and only called through const
// methods.
//
// `step_batch` groups the batch by shard and - when `num_threads > 1` -
// dispatches the per-shard groups to an internal worker pool (one shard is
// only ever processed by one worker at a time, so the hot path stays
// lock-free *within* a shard). In-batch order is preserved per session, and
// per-session outputs are bit-identical for every (num_shards, num_threads)
// configuration: estimates depend only on per-session state, the frame, and
// immutable models. The 1-shard/1-thread default runs the exact serial path
// of the single-threaded engine.
//
// What is NOT thread-safe: `add_estimator` and the references returned by
// `session_monitor` / `session_buffer` / `estimators` require that no other
// thread mutates the engine (respectively that session) concurrently.
//
// Sessions map 1:1 to tracked physical objects; see
// tracking/engine_bridge.hpp for the tracker integration that opens and
// closes sessions automatically.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "core/fusion.hpp"
#include "core/monitor.hpp"
#include "core/quality_factors.hpp"
#include "core/scope_model.hpp"
#include "core/wrapper.hpp"
#include "data/timeseries.hpp"
#include "ml/classifier.hpp"

namespace tauw::core {

/// Identifies one concurrent timeseries (e.g. one tracked sign, one user
/// stream). Ids are chosen by the caller (below 2^63) or auto-assigned by
/// open_session() from a disjoint namespace (top bit set), so external ids
/// - e.g. tracker series ids - never collide with auto-assigned sessions.
using SessionId = std::uint64_t;

/// The components an Engine evaluates. All are owned (shared_ptr or value);
/// copying an EngineComponents is cheap and shares the underlying models.
/// The shared models are immutable after fitting, so every engine shard (and
/// every engine) may evaluate them concurrently.
struct EngineComponents {
  /// The wrapped DDM. Required for step(); replay-only engines (that only
  /// ever call step_precomputed) may leave it null. Must be safe to call
  /// predict() on concurrently (true for anything without mutable state).
  std::shared_ptr<const ml::Classifier> ddm;
  /// Stateless quality-factor extractor (value type).
  QualityFactorExtractor qf_extractor{};
  /// Fitted stateless QIM. Required for step(); optional for replay-only.
  std::shared_ptr<const QualityImpactModel> qim;
  /// Fitted timeseries-aware QIM; null disables the taUW estimator.
  std::shared_ptr<const QualityImpactModel> taqim;
  /// The taQF subset the taQIM was fitted with - a property of the model,
  /// carried alongside it so component sets stay self-consistent.
  TaqfSet taqfs = TaqfSet::all();
  /// Information-fusion rule; null defaults to majority voting.
  std::shared_ptr<const InformationFusion> fusion;
  /// Optional scope compliance model (combined when a location is given).
  std::optional<ScopeComplianceModel> scope{};
};

struct EngineConfig {
  /// Maximum number of live sessions; opening more evicts the least
  /// recently stepped session (its monitor statistics are folded into the
  /// retired aggregate; its buffer and hysteresis mode are dropped - an
  /// evicted session stepped again starts as a fresh series). 0 =
  /// unbounded. Sharded engines split the cap into per-shard budgets of
  /// ceil(max_sessions / num_shards) each (eviction never crosses shards),
  /// so the live total may exceed max_sessions by up to num_shards - 1.
  std::size_t max_sessions = 1024;
  /// Per-session timeseries buffer bound (0 = unbounded, the paper's
  /// setting; series end via the tracker). When bounded, the UF baselines
  /// are windowed to the buffer contents as well, so all estimates and the
  /// fused outcome cover the same evidence.
  std::size_t buffer_capacity = 0;
  /// Per-session runtime-monitor configuration.
  MonitorConfig monitor{};
  /// Number of session shards (>= 1; 0 is treated as 1). More shards mean
  /// less lock contention and more step_batch parallelism; a good default
  /// under threading is 2-4x num_threads.
  std::size_t num_shards = 1;
  /// Worker threads step_batch fans per-shard groups out to (>= 1; 0 is
  /// treated as 1). 1 = no pool, step_batch runs on the caller's thread.
  /// The calling thread always participates, so `num_threads - 1` workers
  /// are spawned.
  std::size_t num_threads = 1;
};

/// One (session, frame) pair of a batched step.
struct SessionFrame {
  SessionId session = 0;
  const data::FrameRecord* frame = nullptr;
  /// Optional sign location for the scope model.
  const sim::SignLocation* location = nullptr;
};

/// Everything the engine produces for one step of one session.
struct EngineStepResult {
  SessionId session = 0;
  UncertainOutcome isolated{};    ///< o_i and stateless u_i
  std::size_t fused_label = 0;    ///< o_i^(if)
  /// Evidence steps in the session's buffer: i + 1 for unbounded sessions,
  /// saturating at EngineConfig::buffer_capacity for bounded ones.
  std::size_t series_length = 0;
  /// One estimate per Engine::estimators(), in registry order.
  std::vector<double> estimates;
  /// The session monitor's verdict on the primary estimate.
  MonitorDecision decision = MonitorDecision::kAccept;
  /// True when this step implicitly created the session - it was never
  /// opened, or was LRU-evicted (possibly earlier in the same batch).
  /// Consumers relying on continuous series should watch this flag.
  bool new_session = false;
};

class Engine {
 public:
  explicit Engine(EngineComponents components, EngineConfig config = {});
  ~Engine();

  // Neither copyable nor movable: shards carry mutexes and the worker pool
  // holds threads with `this` captured. Pass engines by reference.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  const EngineComponents& components() const noexcept { return components_; }
  const EngineConfig& config() const noexcept { return config_; }

  // -- sharding -----------------------------------------------------------
  std::size_t num_shards() const noexcept { return shards_.size(); }
  /// The shard a session id maps to: hash(id) % num_shards. Stable for the
  /// lifetime of the engine.
  std::size_t shard_of(SessionId id) const noexcept;

  // -- estimator registry -------------------------------------------------
  /// Shard 0's estimator instances (every shard holds clones with the same
  /// names, in the same order). Do not call estimate() on these while other
  /// threads step the engine.
  std::span<const std::shared_ptr<UncertaintyEstimator>> estimators()
      const noexcept {
    return shards_.front()->estimators;
  }
  std::vector<std::string> estimator_names() const;
  /// Index into EngineStepResult::estimates; throws if unknown.
  std::size_t estimator_index(std::string_view name) const;
  /// The estimate the per-session monitor decides on: "tauw" when a taQIM
  /// is configured, otherwise "worst_case" (the conservative baseline).
  std::size_t primary_index() const noexcept { return primary_; }
  /// Registers an additional estimator (evaluated after the defaults). Its
  /// estimate() must not throw - see UncertaintyEstimator's contract. On a
  /// sharded engine the estimator must support clone() (each shard gets its
  /// own instance); shard 0 keeps the passed instance. Not thread-safe
  /// against concurrent stepping - register estimators before serving.
  void add_estimator(std::shared_ptr<UncertaintyEstimator> estimator);

  // -- session management (thread-safe) -----------------------------------
  /// Opens a fresh session under an auto-assigned id.
  SessionId open_session();
  /// Opens (or resets) the session with the given id.
  void open_session(SessionId id);
  bool has_session(SessionId id) const;
  /// Live sessions across all shards. Under concurrent mutation the count
  /// is a consistent-per-shard snapshot.
  std::size_t session_count() const;
  /// Closes a session, folding its monitor statistics into the retired
  /// aggregate. Unknown ids are ignored (the session may have been evicted).
  void close_session(SessionId id);
  /// The monitor (decision state + statistics) of a live session. The
  /// reference is only safe to read while no other thread mutates this
  /// session (steps it, closes it, or evicts it by opening others).
  const RuntimeMonitor& session_monitor(SessionId id) const;
  /// The timeseries buffer of a live session (same caveat as
  /// session_monitor; additionally, TimeseriesBuffer::entries() may compact
  /// the ring in place, so even concurrent const access to one session's
  /// buffer from several threads needs external synchronization).
  const TimeseriesBuffer& session_buffer(SessionId id) const;

  // -- streaming (thread-safe) ---------------------------------------------
  /// Full evaluation of one frame: DDM + stateless QIM (+ scope), buffer
  /// push, information fusion, all estimators, monitor decision. Stepping
  /// an unknown id implicitly opens it (a session may have been evicted
  /// under memory pressure; streaming must keep working).
  EngineStepResult step(SessionId id, const data::FrameRecord& frame,
                        const sim::SignLocation* location = nullptr);
  /// Allocation-light variant reusing `result`'s buffers.
  void step_into(SessionId id, const data::FrameRecord& frame,
                 const sim::SignLocation* location, EngineStepResult& result);

  /// Replay path: skips the DDM and stateless QIM and feeds precomputed
  /// interim results (outcome o_i, stateless uncertainty u_i, stateless
  /// QFs) straight into the session - used to re-evaluate recorded traces
  /// without re-rendering frames.
  EngineStepResult step_precomputed(SessionId id,
                                    std::span<const double> stateless_qfs,
                                    std::size_t outcome, double uncertainty);
  void step_precomputed_into(SessionId id,
                             std::span<const double> stateless_qfs,
                             std::size_t outcome, double uncertainty,
                             EngineStepResult& result);

  /// Batched hot path: groups the (session, frame) pairs by shard and steps
  /// each shard's group in input order - on the worker pool when
  /// `num_threads > 1`, inline otherwise. `results` (and each element's
  /// estimate vector) is reused across calls and aligns index-for-index
  /// with `frames`. Concurrent step_batch calls are safe; they serialize on
  /// the pool.
  void step_batch(std::span<const SessionFrame> frames,
                  std::vector<EngineStepResult>& results);

  // -- monitor feedback (thread-safe) --------------------------------------
  /// Ground-truth feedback for a session's previous decision.
  void report_outcome(SessionId id, MonitorDecision decision, bool failure);
  /// Monitor statistics aggregated over all live, closed, and evicted
  /// sessions.
  MonitorStats total_monitor_stats() const;

 private:
  struct Session {
    TimeseriesBuffer buffer;
    UncertaintyFusionAccumulator uf;
    RuntimeMonitor monitor;
    std::list<SessionId>::iterator lru_it;  ///< position in Shard::lru
  };

  /// One shard: a self-contained slice of the session space. All mutable
  /// state a step touches lives here, guarded by `mutex` (step_batch takes
  /// it once per shard group). Heap-allocated (unique_ptr) so shards never
  /// share a cache line and the mutex never moves.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SessionId, Session> sessions;
    std::list<SessionId> lru;  ///< front = most recently used
    MonitorStats retired;      ///< folded stats of closed/evicted sessions
    std::size_t max_sessions = 0;  ///< per-shard LRU budget (0 = unbounded)
    /// Per-shard estimator clones - estimators may keep scratch buffers,
    /// so sharing instances across concurrently stepping shards would race.
    std::vector<std::shared_ptr<UncertaintyEstimator>> estimators;
    std::vector<double> qf_scratch;
  };

  /// One step_batch work item: a shard plus the batch indices routed to it.
  struct ShardTask {
    Shard* shard = nullptr;
    const std::vector<std::size_t>* indices = nullptr;
  };

  /// One in-flight step_batch, shared with the workers. Each batch gets its
  /// own state object so a worker that wakes late simply drains an already
  /// exhausted cursor instead of racing the next batch's bookkeeping. The
  /// task list is immutable once published; `remaining` and `error` are
  /// guarded by pool_mutex_.
  struct BatchState {
    std::vector<ShardTask> tasks;
    std::span<const SessionFrame> frames;
    std::vector<EngineStepResult>* results = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  Shard& shard_for(SessionId id) noexcept {
    return *shards_[shard_of(id)];
  }
  const Shard& shard_for(SessionId id) const noexcept {
    return *shards_[shard_of(id)];
  }

  // Per-shard session bookkeeping; callers hold shard.mutex.
  Session& touch(Shard& shard, SessionId id, bool& created);
  Session& create_session(Shard& shard, SessionId id);
  void validate_external_id(SessionId id) const;
  void evict_lru(Shard& shard, SessionId keep);
  void close_session_locked(Shard& shard, SessionId id);
  const Session& session_at(const Shard& shard, SessionId id) const;

  // Step internals; callers hold shard.mutex.
  void step_common(Shard& shard, SessionId id, Session& session,
                   std::span<const double> stateless_qfs, std::size_t outcome,
                   double ddm_confidence, double uncertainty,
                   EngineStepResult& result);
  void step_frame_locked(Shard& shard, SessionId id,
                         const data::FrameRecord& frame,
                         const sim::SignLocation* location,
                         EngineStepResult& result);

  // Worker pool (see engine.cpp for the dispatch protocol).
  void worker_loop();
  void drain_tasks(BatchState& state);
  void run_shard_task(const BatchState& state, const ShardTask& task);

  EngineComponents components_;
  EngineConfig config_;
  std::size_t primary_ = 0;
  /// Auto-assigned ids live in their own namespace so they never collide
  /// with caller-chosen ids (which should stay below this bit).
  static constexpr SessionId kAutoSessionBit = SessionId{1} << 63;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<SessionId> next_auto_id_{kAutoSessionBit | 1};

  // -- step_batch dispatch state -------------------------------------------
  /// Serializes step_batch callers (the pool handles one batch at a time);
  /// also guards group_scratch_.
  std::mutex batch_mutex_;
  std::vector<std::vector<std::size_t>> group_scratch_;
  /// Pool handshake: a new BatchState is published under pool_mutex_ by
  /// bumping epoch_; workers snapshot the shared_ptr, claim tasks via the
  /// state's atomic cursor, and report completion under pool_mutex_.
  std::mutex pool_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::shared_ptr<BatchState> current_batch_;
  std::vector<std::thread> workers_;
};

}  // namespace tauw::core
