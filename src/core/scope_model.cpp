#include "core/scope_model.hpp"

#include <algorithm>

namespace tauw::core {

double ScopeComplianceModel::incompliance_probability(
    const ScopeFactors& factors) const noexcept {
  if (!config_.region.contains(factors.latitude, factors.longitude)) {
    return config_.violation_probability;
  }
  if (factors.apparent_px < config_.min_apparent_px ||
      factors.apparent_px > config_.max_apparent_px) {
    return config_.violation_probability;
  }
  return 0.0;
}

double ScopeComplianceModel::incompliance_probability(
    const data::FrameRecord& frame,
    const sim::SignLocation& location) const noexcept {
  ScopeFactors f;
  f.latitude = location.latitude;
  f.longitude = location.longitude;
  f.apparent_px = frame.observed_apparent_px;
  return incompliance_probability(f);
}

double combine_uncertainties(double quality_uncertainty,
                             double scope_incompliance) noexcept {
  const double q = std::clamp(quality_uncertainty, 0.0, 1.0);
  const double s = std::clamp(scope_incompliance, 0.0, 1.0);
  // Certainties multiply: the outcome is dependable only if in scope and
  // correct given input quality.
  return 1.0 - (1.0 - q) * (1.0 - s);
}

}  // namespace tauw::core
