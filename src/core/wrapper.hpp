#pragma once
// The stateless uncertainty wrapper (UW): DDM + quality model + quality
// impact model (+ optional scope compliance model), per Klaes & Sembach 2019
// and the paper's Fig. 1.
//
// DEPRECATED: prefer core::Engine (core/engine.hpp), which owns its
// components (no borrowed-pointer lifetime contracts), serves many
// concurrent series, and evaluates the full estimator registry per step.
// This class remains as a thin single-frame shim; see README.md for the
// old-API -> new-API migration table.

#include <optional>

#include "core/quality_factors.hpp"
#include "core/quality_impact_model.hpp"
#include "core/scope_model.hpp"
#include "ml/classifier.hpp"

namespace tauw::core {

/// A DDM outcome enriched with a dependable uncertainty estimate.
struct UncertainOutcome {
  std::size_t label = 0;       ///< DDM outcome
  double uncertainty = 0.0;    ///< dependable failure-probability bound
  double ddm_confidence = 0.0; ///< the model's own (untrusted) softmax score
};

class UncertaintyWrapper {
 public:
  /// Wraps `ddm` with the given quality-factor extractor and fitted QIM.
  /// The DDM and QIM are borrowed; they must outlive the wrapper.
  UncertaintyWrapper(const ml::Classifier& ddm,
                     QualityFactorExtractor qf_extractor,
                     const QualityImpactModel& qim,
                     std::optional<ScopeComplianceModel> scope = std::nullopt);

  /// Runs the DDM on the frame's features and attaches the quality-related
  /// uncertainty (combined with scope incompliance when a scope model and a
  /// location are provided).
  UncertainOutcome evaluate(const data::FrameRecord& frame,
                            const sim::SignLocation* location = nullptr) const;

  /// Uncertainty only, for a precomputed quality-factor vector.
  double uncertainty_for(std::span<const double> quality_factors) const;

  const QualityFactorExtractor& qf_extractor() const noexcept {
    return qf_extractor_;
  }
  const QualityImpactModel& qim() const noexcept { return *qim_; }
  const ml::Classifier& ddm() const noexcept { return *ddm_; }

 private:
  const ml::Classifier* ddm_;
  QualityFactorExtractor qf_extractor_;
  const QualityImpactModel* qim_;
  std::optional<ScopeComplianceModel> scope_;
};

}  // namespace tauw::core
