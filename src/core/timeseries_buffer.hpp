#pragma once
// The timeseries buffer of the taUW architecture (paper Fig. 2).
//
// Temporarily stores interim results (DDM outcome and stateless uncertainty
// per timestep) for the current timeseries; cleared at the onset of a new
// series. The information-fusion component and the timeseries-aware quality
// model both read from this buffer.
//
// Bounded buffers are a ring: push() overwrites the oldest slot in O(1)
// instead of erasing the vector front (which was O(capacity) on every push
// of every capped session - the engine's steady-state hot path). entries()
// keeps its contiguous-span contract by compacting (rotating the ring into
// chronological order) lazily on read; the rotation is O(length) but only
// runs when a push wrapped the ring since the last read, so a
// push-then-read cycle does amortized O(1) extra work per step and readers
// see one contiguous, oldest-to-newest span either way.
//
// A small sorted (outcome -> count) multiset is maintained incrementally on
// push/evict, making unique_outcomes() O(1) and count_outcome() O(log k)
// for k distinct outcomes - both were O(n) (or worse) linear scans called
// per step.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace tauw::core {

/// One buffered timestep.
struct BufferEntry {
  std::size_t outcome = 0;    ///< DDM outcome o_j
  double uncertainty = 0.0;   ///< stateless wrapper estimate u_j
};

class TimeseriesBuffer {
 public:
  /// Unbounded buffer (the paper's setting: series end via the tracker).
  TimeseriesBuffer() = default;

  /// Bounded buffer keeping only the most recent `capacity` timesteps -
  /// a deployment option for very long series (paper's future work discusses
  /// longer timeseries; memory must stay bounded at runtime). capacity == 0
  /// means unbounded.
  explicit TimeseriesBuffer(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }

  /// Clears the buffer at the onset of a new timeseries.
  void clear() noexcept {
    entries_.clear();
    head_ = 0;
    outcome_counts_.clear();
  }

  /// Appends the current timestep's interim results; evicts the oldest
  /// entry when a capacity is set and reached.
  void push(std::size_t outcome, double uncertainty);

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t length() const noexcept { return entries_.size(); }

  /// The j-th timestep in chronological order (0 = oldest buffered).
  const BufferEntry& entry(std::size_t j) const;

  /// All buffered timesteps, oldest first, as one contiguous span. May
  /// compact the ring in place (no allocation, entries are relocated):
  /// references obtained earlier from entry()/latest()/entries() are
  /// invalidated by any later push() *or* entries() call. Although const,
  /// treat entries() as a write for synchronization purposes - concurrent
  /// calls on one shared buffer need external locking (the engine only
  /// touches a session's buffer under its shard lock; its session_buffer()
  /// accessor already requires external quiescence).
  std::span<const BufferEntry> entries() const noexcept;

  const BufferEntry& latest() const;

  /// Number of buffered outcomes equal to `label`.
  std::size_t count_outcome(std::size_t label) const noexcept;

  /// Number of distinct outcomes in the buffer.
  std::size_t unique_outcomes() const noexcept { return outcome_counts_.size(); }

 private:
  void add_outcome(std::size_t outcome);
  void remove_outcome(std::size_t outcome) noexcept;

  std::size_t capacity_ = 0;  // 0 = unbounded
  // Ring storage: once a bounded buffer is full, head_ is the index of the
  // oldest entry and push() overwrites it. entries() rotates the ring back
  // to head_ == 0, so the members are mutable (compaction is logically
  // const: the sequence of timesteps is unchanged).
  mutable std::vector<BufferEntry> entries_;
  mutable std::size_t head_ = 0;
  /// Sorted (outcome, multiplicity) pairs for the buffered entries.
  std::vector<std::pair<std::size_t, std::size_t>> outcome_counts_;
};

}  // namespace tauw::core
