#pragma once
// The timeseries buffer of the taUW architecture (paper Fig. 2).
//
// Temporarily stores interim results (DDM outcome and stateless uncertainty
// per timestep) for the current timeseries; cleared at the onset of a new
// series. The information-fusion component and the timeseries-aware quality
// model both read from this buffer.

#include <cstddef>
#include <span>
#include <vector>

namespace tauw::core {

/// One buffered timestep.
struct BufferEntry {
  std::size_t outcome = 0;    ///< DDM outcome o_j
  double uncertainty = 0.0;   ///< stateless wrapper estimate u_j
};

class TimeseriesBuffer {
 public:
  /// Unbounded buffer (the paper's setting: series end via the tracker).
  TimeseriesBuffer() = default;

  /// Bounded buffer keeping only the most recent `capacity` timesteps -
  /// a deployment option for very long series (paper's future work discusses
  /// longer timeseries; memory must stay bounded at runtime). capacity == 0
  /// means unbounded.
  explicit TimeseriesBuffer(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }

  /// Clears the buffer at the onset of a new timeseries.
  void clear() noexcept { entries_.clear(); }

  /// Appends the current timestep's interim results; evicts the oldest
  /// entry when a capacity is set and reached.
  void push(std::size_t outcome, double uncertainty);

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t length() const noexcept { return entries_.size(); }

  const BufferEntry& entry(std::size_t j) const { return entries_.at(j); }
  std::span<const BufferEntry> entries() const noexcept { return entries_; }

  const BufferEntry& latest() const;

  /// Number of buffered outcomes equal to `label`.
  std::size_t count_outcome(std::size_t label) const noexcept;

  /// Number of distinct outcomes in the buffer.
  std::size_t unique_outcomes() const noexcept;

 private:
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::vector<BufferEntry> entries_;
};

}  // namespace tauw::core
