#pragma once
// The timeseries buffer of the taUW architecture (paper Fig. 2).
//
// Temporarily stores interim results (DDM outcome and stateless uncertainty
// per timestep) for the current timeseries; cleared at the onset of a new
// series. The information-fusion component and the timeseries-aware quality
// model both read from this buffer.
//
// Bounded buffers are a ring: push() overwrites the oldest slot in O(1)
// instead of erasing the vector front (which was O(capacity) on every push
// of every capped session - the engine's steady-state hot path). entries()
// keeps its contiguous-span contract by compacting (rotating the ring into
// chronological order) lazily on read; the rotation is O(length) but only
// runs when a push wrapped the ring since the last read, so a
// push-then-read cycle does amortized O(1) extra work per step and readers
// see one contiguous, oldest-to-newest span either way.
//
// -- Streaming aggregates ----------------------------------------------------
//
// Beyond the raw entries, the buffer maintains every aggregate the serving
// hot path derives from a window, incrementally on push/evict/clear, so the
// per-step cost of fusion, the UF baselines, and the taQFs is O(1) in the
// window length (O(k) for k distinct outcomes, which a DDM's class count
// bounds):
//
//   * per-outcome OutcomeStat: count, certainty_sum (taQF1/taQF4 and
//     certainty-weighted voting), decayed_votes (recency-weighted voting,
//     Horner form V <- V*lambda + 1), and last_seen (the paper's
//     most-recent tie-break without a window scan),
//   * window-wide UF state: zero_count + log_sum (naive rule) and exact
//     sliding min/max (opportune / worst-case rules) - scalars for
//     unbounded buffers (no eviction), monotonic wedges for bounded ones.
//
// Exactness contract: integer aggregates (counts, last_seen, zero_count,
// min/max picks) are exact always. Floating-point sums are bit-identical to
// the from-scratch rescan oracles while updates are add-only (unbounded
// buffers without decay, bounded buffers before the first eviction) because
// they replay the oracle's chronological accumulation order. Subtract-on-
// evict and decay rescaling drift by O(ops) ulps, so the buffer RE-ANCHORS
// with an exact chronological resummation every `capacity` pushes by
// logical count (geometrically for unbounded decayed buffers):
// immediately after a re-anchor every aggregate is again bit-identical to
// its oracle, and drift_ops() exposes the inexact-update count since the
// last anchor so tests can scale tolerances principally. Amortized anchor
// cost is O(1) per push.
//
// Allocation discipline: push() front-loads every possible allocation
// (reserve_for_push) before mutating any state - the strong exception
// guarantee of the old two-phase update, without rollback code - and all
// aggregate storage stabilizes at a window-bounded high-water mark, so
// steady-state pushes on a warmed bounded buffer are allocation-free (the
// TAUW_COUNT_ALLOCS gates cover the long-window path end to end).

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace tauw::core {

/// One buffered timestep.
struct BufferEntry {
  std::size_t outcome = 0;    ///< DDM outcome o_j
  double uncertainty = 0.0;   ///< stateless wrapper estimate u_j
};

/// Streaming per-outcome aggregates over the buffered window (sorted by
/// outcome; see TimeseriesBuffer::outcome_stats).
struct OutcomeStat {
  std::size_t outcome = 0;
  std::size_t count = 0;        ///< window entries with this outcome (exact)
  double certainty_sum = 0.0;   ///< sum of (1 - u_j) over those entries
  /// Sum of lambda^age_j over those entries; maintained only when the
  /// buffer was constructed with a decay lambda, 0 otherwise.
  double decayed_votes = 0.0;
  /// Logical push index (see total_pushed) of the newest such entry - the
  /// paper's most-recent tie-break in O(1).
  std::uint64_t last_seen = 0;
};

/// Window-wide uncertainty-fusion aggregates (see uncertainty_fusion.hpp
/// for the rules they feed). Empty windows carry the vacuous defaults the
/// UncertaintyFusionAccumulator uses: min 1.0, max 0.0, log_sum 0.0.
struct WindowUfAggregates {
  std::size_t count = 0;       ///< buffered entries
  std::size_t zero_count = 0;  ///< entries with u_j == 0 (naive fuses to 0)
  double log_sum = 0.0;        ///< sum of log(u_j) over entries with u_j > 0
  double min_u = 1.0;          ///< exact window minimum
  double max_u = 0.0;          ///< exact window maximum
};

class TimeseriesBuffer {
 public:
  /// Unbounded buffer (the paper's setting: series end via the tracker).
  TimeseriesBuffer() = default;

  /// Bounded buffer keeping only the most recent `capacity` timesteps -
  /// a deployment option for very long series (paper's future work discusses
  /// longer timeseries; memory must stay bounded at runtime). capacity == 0
  /// means unbounded. `decay_lambda` in (0, 1] additionally maintains the
  /// per-outcome decayed_votes plane for a recency-weighted fusion rule
  /// with that lambda; 0 (the default) leaves the decay plane off.
  explicit TimeseriesBuffer(std::size_t capacity, double decay_lambda = 0.0);

  std::size_t capacity() const noexcept { return capacity_; }
  /// The decay lambda the decayed_votes plane is maintained for (0 = off).
  double decay_lambda() const noexcept { return decay_lambda_; }

  /// Clears the buffer at the onset of a new timeseries.
  void clear() noexcept;

  /// Appends the current timestep's interim results; evicts the oldest
  /// entry when a capacity is set and reached. All aggregates are updated
  /// incrementally (amortized O(1) in the window length per push).
  void push(std::size_t outcome, double uncertainty);

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t length() const noexcept { return entries_.size(); }

  /// The j-th timestep in chronological order (0 = oldest buffered).
  const BufferEntry& entry(std::size_t j) const;

  /// All buffered timesteps, oldest first, as one contiguous span. May
  /// compact the ring in place (no allocation, entries are relocated):
  /// references obtained earlier from entry()/latest()/entries() are
  /// invalidated by any later push() *or* entries() call. Although const,
  /// treat entries() as a write for synchronization purposes - concurrent
  /// calls on one shared buffer need external locking (the engine only
  /// touches a session's buffer under its shard lock; its session_buffer()
  /// accessor already requires external quiescence).
  std::span<const BufferEntry> entries() const noexcept;

  const BufferEntry& latest() const;

  /// Number of buffered outcomes equal to `label`. O(log k).
  std::size_t count_outcome(std::size_t label) const noexcept;

  /// Number of distinct outcomes in the buffer. O(1).
  std::size_t unique_outcomes() const noexcept { return stats_.size(); }

  // -- streaming aggregates (all O(1)/O(log k) reads) -----------------------

  /// Per-outcome aggregates, sorted by outcome. The span is invalidated by
  /// push()/clear() (never by entries() compaction - the stats live apart
  /// from the ring).
  std::span<const OutcomeStat> outcome_stats() const noexcept {
    return stats_;
  }
  /// The stat row for `label`, or nullptr when no buffered entry has it.
  const OutcomeStat* outcome_stat(std::size_t label) const noexcept;

  /// Window-wide UF aggregates (count/zero_count/log_sum/min/max).
  WindowUfAggregates uf_aggregates() const noexcept;

  /// Monotonic logical clock: total pushes since construction or the last
  /// clear(). The j-th buffered entry carries logical index
  /// total_pushed() - length() + j; OutcomeStat::last_seen indexes into the
  /// same clock. Rotation-safe: lazy ring compaction never changes it.
  std::uint64_t total_pushed() const noexcept { return total_pushed_; }

  /// Pushes that updated a floating-point aggregate inexactly (an evict
  /// subtract or a decay rescale) since the last exact resummation. 0 means
  /// every aggregate is currently bit-identical to its rescan oracle; tests
  /// scale their between-anchor tolerances by this count.
  std::uint64_t drift_ops() const noexcept { return drift_ops_; }

 private:
  /// Monotonic wedge for exact sliding-window min/max on bounded buffers:
  /// (logical index, value) pairs whose values are monotone front-to-back,
  /// so the front is the window extremum. Front pops advance begin (no
  /// erase); the prefix is reclaimed wholesale when the epoch re-anchor
  /// rebuilds the wedge, bounding the backing vector at ~2x the window.
  struct MonotonicWedge {
    std::vector<std::pair<std::uint64_t, double>> q;
    std::size_t begin = 0;

    void clear() noexcept {
      q.clear();
      begin = 0;
    }
    double front_value() const noexcept { return q[begin].second; }
    void evict_before(std::uint64_t window_start) noexcept {
      while (begin < q.size() && q[begin].first < window_start) ++begin;
    }
  };

  const BufferEntry& entry_at(std::size_t j) const noexcept {
    std::size_t at = head_ + j;
    if (at >= entries_.size()) at -= entries_.size();
    return entries_[at];
  }

  OutcomeStat* find_stat(std::size_t outcome) noexcept;
  /// Front-loads every allocation this push could need; the only fallible
  /// step of push() (strong exception guarantee without rollback code).
  void reserve_for_push();
  /// Removes the oldest entry (the ring slot about to be overwritten) from
  /// every aggregate.
  void retire_oldest(const BufferEntry& slot) noexcept;
  /// Adds the new entry to every aggregate.
  void admit(std::size_t outcome, double uncertainty,
             std::uint64_t logical) noexcept;
  /// Exact chronological resummation of every floating-point aggregate -
  /// replays the rescan oracles' operation order, so aggregates leave this
  /// function bit-identical to a from-scratch recomputation. noexcept: all
  /// storage was pre-reserved by reserve_for_push.
  void reanchor() noexcept;

  std::size_t capacity_ = 0;    // 0 = unbounded
  double decay_lambda_ = 0.0;   // 0 = decay plane off
  double decay_pow_capacity_ = 0.0;  // lambda^capacity (evict subtract)
  // Ring storage: once a bounded buffer is full, head_ is the index of the
  // oldest entry and push() overwrites it. entries() rotates the ring back
  // to head_ == 0, so the members are mutable (compaction is logically
  // const: the sequence of timesteps is unchanged).
  mutable std::vector<BufferEntry> entries_;
  mutable std::size_t head_ = 0;
  /// Sorted per-outcome aggregates (supersedes the old (outcome, count)
  /// multiset; counts ride along in OutcomeStat).
  std::vector<OutcomeStat> stats_;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t drift_ops_ = 0;
  /// Next total_pushed_ that triggers a re-anchor: every `capacity_` pushes
  /// for bounded buffers (by logical count, deliberately independent of the
  /// head_ position entries() compaction rewinds), geometric doubling for
  /// unbounded decayed buffers.
  std::uint64_t next_anchor_ = kFirstUnboundedAnchor;
  // Window UF state.
  std::size_t zero_count_ = 0;
  double log_sum_ = 0.0;
  double min_scalar_ = 1.0;  // unbounded buffers (add-only, exact)
  double max_scalar_ = 0.0;
  MonotonicWedge min_wedge_;  // bounded buffers (exact under eviction)
  MonotonicWedge max_wedge_;
  /// Decay weights scratch for reanchor(); high-water sized, reserved
  /// before the anchor push mutates anything.
  std::vector<double> anchor_scratch_;

  static constexpr std::uint64_t kFirstUnboundedAnchor = 64;
};

}  // namespace tauw::core
