#pragma once
// The nine quality deficits of the paper's augmentation framework
// (Joeckel & Klaes, SafeComp 2019), Section IV.B.2.

#include <array>
#include <cstdint>
#include <string_view>

namespace tauw::imaging {

/// Quality deficit kinds. The order defines the layout of quality-factor
/// vectors throughout the library; do not reorder.
enum class Deficit : std::uint8_t {
  kRain = 0,
  kDarkness,
  kHaze,
  kNaturalBacklight,
  kArtificialBacklight,
  kDirtOnSign,
  kDirtOnLens,
  kSteamedUpLens,
  kMotionBlur,
};

inline constexpr std::size_t kNumDeficits = 9;

inline constexpr std::array<Deficit, kNumDeficits> all_deficits() {
  return {Deficit::kRain,
          Deficit::kDarkness,
          Deficit::kHaze,
          Deficit::kNaturalBacklight,
          Deficit::kArtificialBacklight,
          Deficit::kDirtOnSign,
          Deficit::kDirtOnLens,
          Deficit::kSteamedUpLens,
          Deficit::kMotionBlur};
}

constexpr std::string_view deficit_name(Deficit d) {
  switch (d) {
    case Deficit::kRain: return "rain";
    case Deficit::kDarkness: return "darkness";
    case Deficit::kHaze: return "haze";
    case Deficit::kNaturalBacklight: return "natural_backlight";
    case Deficit::kArtificialBacklight: return "artificial_backlight";
    case Deficit::kDirtOnSign: return "dirt_on_sign";
    case Deficit::kDirtOnLens: return "dirt_on_lens";
    case Deficit::kSteamedUpLens: return "steamed_up_lens";
    case Deficit::kMotionBlur: return "motion_blur";
  }
  return "unknown";
}

/// True for deficits the paper allows to vary frame-by-frame within one
/// series (Section IV.B.2: motion blur and artificial backlight).
constexpr bool varies_within_series(Deficit d) {
  return d == Deficit::kMotionBlur || d == Deficit::kArtificialBacklight;
}

/// Discrete intensity levels used to augment the *training* data
/// ("low, medium, and high intensity", Section IV.B.2).
enum class IntensityLevel : std::uint8_t { kNone = 0, kLow, kMedium, kHigh };

constexpr double intensity_value(IntensityLevel level) {
  switch (level) {
    case IntensityLevel::kNone: return 0.0;
    case IntensityLevel::kLow: return 0.25;
    case IntensityLevel::kMedium: return 0.55;
    case IntensityLevel::kHigh: return 0.9;
  }
  return 0.0;
}

/// Per-frame deficit intensities, each in [0, 1].
using DeficitVector = std::array<double, kNumDeficits>;

}  // namespace tauw::imaging
