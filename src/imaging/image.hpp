#pragma once
// Minimal grayscale image type and pixel operations used by the synthetic
// traffic-sign rendering and augmentation pipeline.
//
// Pixels are floats in [0, 1] stored row-major. The type is a regular value
// type (copyable, movable, equality-comparable) per the Core Guidelines.

#include <cstddef>
#include <span>
#include <vector>

namespace tauw::imaging {

class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  Image(std::size_t width, std::size_t height, float fill = 0.0F);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }
  std::size_t size() const noexcept { return pixels_.size(); }
  bool empty() const noexcept { return pixels_.empty(); }

  float& at(std::size_t x, std::size_t y);
  float at(std::size_t x, std::size_t y) const;

  /// Unchecked access for hot loops.
  float& operator()(std::size_t x, std::size_t y) noexcept {
    return pixels_[y * width_ + x];
  }
  float operator()(std::size_t x, std::size_t y) const noexcept {
    return pixels_[y * width_ + x];
  }

  std::span<float> pixels() noexcept { return pixels_; }
  std::span<const float> pixels() const noexcept { return pixels_; }

  /// Clamps every pixel into [0, 1].
  void clamp() noexcept;

  /// Mean pixel intensity (0 for an empty image).
  float mean() const noexcept;

  bool operator==(const Image&) const = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<float> pixels_;
};

/// Bilinear resize to the given dimensions. Requires a non-empty source.
Image resize_bilinear(const Image& src, std::size_t width, std::size_t height);

/// Separable box blur with the given radius (0 returns a copy).
Image box_blur(const Image& src, std::size_t radius);

/// One-dimensional directional blur along (dx, dy) with `length` taps -
/// used for the motion-blur deficit.
Image directional_blur(const Image& src, double dx, double dy,
                       std::size_t length);

/// Per-pixel linear transform a*p + b, clamped to [0, 1].
Image affine_intensity(const Image& src, float a, float b);

/// Blends a toward b: (1 - t) * a + t * b. Requires equal dimensions.
Image blend(const Image& a, const Image& b, float t);

/// Mean absolute per-pixel difference; requires equal dimensions.
float mean_abs_diff(const Image& a, const Image& b);

}  // namespace tauw::imaging
