#include "imaging/pgm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace tauw::imaging {

void write_pgm(std::ostream& out, const Image& image) {
  if (image.empty()) {
    throw std::invalid_argument("write_pgm: empty image");
  }
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  std::vector<unsigned char> row(image.width());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const float clamped = std::clamp(image(x, y), 0.0F, 1.0F);
      row[x] = static_cast<unsigned char>(std::lround(clamped * 255.0F));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
}

void save_pgm(const std::string& path, const Image& image) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("save_pgm: cannot open " + path);
  }
  write_pgm(file, image);
  if (!file) {
    throw std::runtime_error("save_pgm: write failed for " + path);
  }
}

namespace {

// Reads the next whitespace/comment-delimited token of a PGM header.
std::string next_token(std::istream& in) {
  std::string token;
  for (;;) {
    const int c = in.get();
    if (c == EOF) break;
    if (c == '#') {  // comment until end of line
      std::string dummy;
      std::getline(in, dummy);
      continue;
    }
    if (std::isspace(c) != 0) {
      if (!token.empty()) break;
      continue;
    }
    token.push_back(static_cast<char>(c));
  }
  return token;
}

}  // namespace

Image read_pgm(std::istream& in) {
  if (next_token(in) != "P5") {
    throw std::runtime_error("read_pgm: not a binary PGM (P5)");
  }
  std::size_t width = 0;
  std::size_t height = 0;
  int maxval = 0;
  try {
    width = std::stoul(next_token(in));
    height = std::stoul(next_token(in));
    maxval = std::stoi(next_token(in));
  } catch (const std::exception&) {
    throw std::runtime_error("read_pgm: malformed header");
  }
  if (width == 0 || height == 0 || maxval <= 0 || maxval > 255) {
    throw std::runtime_error("read_pgm: unsupported dimensions/maxval");
  }
  Image image(width, height);
  std::vector<unsigned char> row(width);
  for (std::size_t y = 0; y < height; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (in.gcount() != static_cast<std::streamsize>(row.size())) {
      throw std::runtime_error("read_pgm: truncated pixel data");
    }
    for (std::size_t x = 0; x < width; ++x) {
      image(x, y) = static_cast<float>(row[x]) / static_cast<float>(maxval);
    }
  }
  return image;
}

Image load_pgm(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("load_pgm: cannot open " + path);
  }
  return read_pgm(file);
}

}  // namespace tauw::imaging
