#include "imaging/image.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tauw::imaging {

Image::Image(std::size_t width, std::size_t height, float fill)
    : width_(width), height_(height), pixels_(width * height, fill) {}

float& Image::at(std::size_t x, std::size_t y) {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::at");
  return pixels_[y * width_ + x];
}

float Image::at(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::at");
  return pixels_[y * width_ + x];
}

void Image::clamp() noexcept {
  for (float& p : pixels_) p = std::clamp(p, 0.0F, 1.0F);
}

float Image::mean() const noexcept {
  if (pixels_.empty()) return 0.0F;
  double acc = 0.0;
  for (const float p : pixels_) acc += p;
  return static_cast<float>(acc / static_cast<double>(pixels_.size()));
}

Image resize_bilinear(const Image& src, std::size_t width,
                      std::size_t height) {
  if (src.empty() || width == 0 || height == 0) {
    throw std::invalid_argument("resize_bilinear requires non-empty images");
  }
  Image dst(width, height);
  const double sx =
      static_cast<double>(src.width()) / static_cast<double>(width);
  const double sy =
      static_cast<double>(src.height()) / static_cast<double>(height);
  for (std::size_t y = 0; y < height; ++y) {
    const double fy = (static_cast<double>(y) + 0.5) * sy - 0.5;
    const double cy = std::clamp(fy, 0.0, static_cast<double>(src.height() - 1));
    const auto y0 = static_cast<std::size_t>(cy);
    const std::size_t y1 = std::min(y0 + 1, src.height() - 1);
    const double wy = cy - static_cast<double>(y0);
    for (std::size_t x = 0; x < width; ++x) {
      const double fx = (static_cast<double>(x) + 0.5) * sx - 0.5;
      const double cx =
          std::clamp(fx, 0.0, static_cast<double>(src.width() - 1));
      const auto x0 = static_cast<std::size_t>(cx);
      const std::size_t x1 = std::min(x0 + 1, src.width() - 1);
      const double wx = cx - static_cast<double>(x0);
      const double top = (1.0 - wx) * src(x0, y0) + wx * src(x1, y0);
      const double bot = (1.0 - wx) * src(x0, y1) + wx * src(x1, y1);
      dst(x, y) = static_cast<float>((1.0 - wy) * top + wy * bot);
    }
  }
  return dst;
}

Image box_blur(const Image& src, std::size_t radius) {
  if (radius == 0) return src;
  const std::size_t w = src.width();
  const std::size_t h = src.height();
  Image tmp(w, h);
  Image dst(w, h);
  const auto r = static_cast<std::ptrdiff_t>(radius);
  // Horizontal pass.
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double acc = 0.0;
      std::size_t cnt = 0;
      for (std::ptrdiff_t k = -r; k <= r; ++k) {
        const std::ptrdiff_t xx = static_cast<std::ptrdiff_t>(x) + k;
        if (xx < 0 || xx >= static_cast<std::ptrdiff_t>(w)) continue;
        acc += src(static_cast<std::size_t>(xx), y);
        ++cnt;
      }
      tmp(x, y) = static_cast<float>(acc / static_cast<double>(cnt));
    }
  }
  // Vertical pass.
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double acc = 0.0;
      std::size_t cnt = 0;
      for (std::ptrdiff_t k = -r; k <= r; ++k) {
        const std::ptrdiff_t yy = static_cast<std::ptrdiff_t>(y) + k;
        if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h)) continue;
        acc += tmp(x, static_cast<std::size_t>(yy));
        ++cnt;
      }
      dst(x, y) = static_cast<float>(acc / static_cast<double>(cnt));
    }
  }
  return dst;
}

Image directional_blur(const Image& src, double dx, double dy,
                       std::size_t length) {
  if (length <= 1) return src;
  const double norm = std::hypot(dx, dy);
  if (norm == 0.0) return src;
  const double ux = dx / norm;
  const double uy = dy / norm;
  const std::size_t w = src.width();
  const std::size_t h = src.height();
  Image dst(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double acc = 0.0;
      std::size_t cnt = 0;
      const double half = static_cast<double>(length - 1) / 2.0;
      for (std::size_t t = 0; t < length; ++t) {
        const double off = static_cast<double>(t) - half;
        const auto xx = static_cast<std::ptrdiff_t>(
            std::lround(static_cast<double>(x) + ux * off));
        const auto yy = static_cast<std::ptrdiff_t>(
            std::lround(static_cast<double>(y) + uy * off));
        if (xx < 0 || yy < 0 || xx >= static_cast<std::ptrdiff_t>(w) ||
            yy >= static_cast<std::ptrdiff_t>(h)) {
          continue;
        }
        acc += src(static_cast<std::size_t>(xx), static_cast<std::size_t>(yy));
        ++cnt;
      }
      dst(x, y) = cnt == 0 ? src(x, y)
                           : static_cast<float>(acc / static_cast<double>(cnt));
    }
  }
  return dst;
}

Image affine_intensity(const Image& src, float a, float b) {
  Image dst = src;
  for (float& p : dst.pixels()) p = std::clamp(a * p + b, 0.0F, 1.0F);
  return dst;
}

Image blend(const Image& a, const Image& b, float t) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("blend requires equal dimensions");
  }
  Image dst = a;
  auto pa = dst.pixels();
  auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    pa[i] = (1.0F - t) * pa[i] + t * pb[i];
  }
  return dst;
}

float mean_abs_diff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mean_abs_diff requires equal dimensions");
  }
  if (a.empty()) return 0.0F;
  double acc = 0.0;
  auto pa = a.pixels();
  auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    acc += std::fabs(static_cast<double>(pa[i]) - static_cast<double>(pb[i]));
  }
  return static_cast<float>(acc / static_cast<double>(pa.size()));
}

}  // namespace tauw::imaging
