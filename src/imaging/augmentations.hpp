#pragma once
// Pixel-level implementations of the nine quality deficits (Section IV.B.2).
//
// Every augmentation takes an intensity in [0, 1] (0 = absent, 1 = extreme)
// and an Rng for stochastic placement; intensity 0 must return the input
// unchanged. The operators are pure functions of (image, intensity, rng)
// so the augmentation pipeline stays deterministic under a fixed seed.

#include "imaging/deficit.hpp"
#include "imaging/image.hpp"
#include "stats/rng.hpp"

namespace tauw::imaging {

/// Rain: semi-transparent bright streaks plus a slight wash-out.
Image apply_rain(const Image& src, double intensity, stats::Rng& rng);

/// Darkness: global luminance reduction with mild contrast loss.
Image apply_darkness(const Image& src, double intensity, stats::Rng& rng);

/// Haze/fog: blend toward a bright veil, reducing contrast.
Image apply_haze(const Image& src, double intensity, stats::Rng& rng);

/// Natural backlight: wide diagonal glare gradient (low sun).
Image apply_natural_backlight(const Image& src, double intensity,
                              stats::Rng& rng);

/// Artificial backlight: localized bright bloom (head/street lights).
Image apply_artificial_backlight(const Image& src, double intensity,
                                 stats::Rng& rng);

/// Dirt on the traffic sign: dark blobs over the central sign area.
Image apply_dirt_on_sign(const Image& src, double intensity, stats::Rng& rng);

/// Dirt on the sensor lens: dark blobs anywhere in the frame.
Image apply_dirt_on_lens(const Image& src, double intensity, stats::Rng& rng);

/// Steamed-up lens: strong blur plus brightening (condensation).
Image apply_steamed_up_lens(const Image& src, double intensity,
                            stats::Rng& rng);

/// Motion blur: directional blur with random direction near horizontal.
Image apply_motion_blur(const Image& src, double intensity, stats::Rng& rng);

/// Dispatches to the operator for `deficit`.
Image apply_deficit(const Image& src, Deficit deficit, double intensity,
                    stats::Rng& rng);

/// Applies all nine deficits in canonical order with the given intensities.
Image apply_all(const Image& src, const DeficitVector& intensities,
                stats::Rng& rng);

}  // namespace tauw::imaging
