#pragma once
// Procedural renderer for GTSRB-like traffic-sign images.
//
// The GTSRB dataset has 43 sign classes photographed while a car approaches,
// so the apparent sign size grows along each series. We substitute photos
// with procedurally generated sign faces: each class gets a deterministic
// template (shape family + high-contrast interior glyph) that stays fixed for
// the lifetime of the renderer, and frames render the template at a given
// apparent pixel size into a cluttered background. Class confusability
// therefore comes from downscaling (distance) and the quality-deficit
// augmentations - the same difficulty axes the paper's study manipulates.

#include <cstddef>

#include "imaging/image.hpp"
#include "stats/rng.hpp"

namespace tauw::imaging {

inline constexpr std::size_t kNumClasses = 43;   ///< GTSRB class count
inline constexpr std::size_t kFrameSize = 28;    ///< rendered frame edge (px)
inline constexpr std::size_t kTemplateSize = 40; ///< template edge (px)

class SignRenderer {
 public:
  /// Builds all 43 class templates deterministically from `seed`.
  explicit SignRenderer(std::uint64_t seed = 7);

  /// Number of classes (always kNumClasses; exposed for API symmetry).
  std::size_t num_classes() const noexcept { return kNumClasses; }

  /// Full-resolution template of a class. Requires label < num_classes().
  const Image& sign_template(std::size_t label) const;

  /// Renders one frame: the sign of class `label` at apparent size
  /// `apparent_px` (clamped to [6, kFrameSize]) over a noisy road background,
  /// with sub-pixel position jitter and pixel sensor noise drawn from `rng`.
  Image render(std::size_t label, double apparent_px,
               stats::Rng& rng) const;

 private:
  Image make_template(std::size_t label, std::uint64_t seed) const;

  std::vector<Image> templates_;
};

}  // namespace tauw::imaging
