#pragma once
// Binary PGM (P5) reading/writing for grayscale images.
//
// Used for debugging the renderer and augmentations (inspecting what the
// DDM actually sees) and by downstream users to feed real camera crops into
// the pipeline. Pixels quantize to 8 bits on write; values round-trip within
// 1/255.

#include <iosfwd>
#include <string>

#include "imaging/image.hpp"

namespace tauw::imaging {

/// Writes `image` as binary PGM (P5, maxval 255).
void write_pgm(std::ostream& out, const Image& image);

/// Writes to a file; throws std::runtime_error when the file cannot be
/// opened.
void save_pgm(const std::string& path, const Image& image);

/// Reads a binary PGM (P5). Supports comment lines and any maxval <= 255.
Image read_pgm(std::istream& in);

/// Reads from a file; throws std::runtime_error on open/parse failure.
Image load_pgm(const std::string& path);

}  // namespace tauw::imaging
