#include "imaging/sign_renderer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace tauw::imaging {

namespace {

// Shape families mirroring real sign silhouettes.
enum class Shape { kCircle, kTriangle, kDiamond, kOctagon };

bool inside_shape(Shape shape, double nx, double ny) {
  // nx, ny in [-1, 1] relative to the template center.
  switch (shape) {
    case Shape::kCircle:
      return nx * nx + ny * ny <= 1.0;
    case Shape::kTriangle:
      // Upward triangle: y from -1 (top) to 1 (bottom).
      return ny >= -1.0 && ny <= 1.0 && std::fabs(nx) <= (ny + 1.0) / 2.0;
    case Shape::kDiamond:
      return std::fabs(nx) + std::fabs(ny) <= 1.0;
    case Shape::kOctagon: {
      const double ax = std::fabs(nx);
      const double ay = std::fabs(ny);
      return ax <= 1.0 && ay <= 1.0 && ax + ay <= 1.45;
    }
  }
  return false;
}

}  // namespace

SignRenderer::SignRenderer(std::uint64_t seed) {
  templates_.reserve(kNumClasses);
  for (std::size_t label = 0; label < kNumClasses; ++label) {
    templates_.push_back(make_template(label, seed));
  }
}

const Image& SignRenderer::sign_template(std::size_t label) const {
  if (label >= templates_.size()) {
    throw std::out_of_range("SignRenderer: label out of range");
  }
  return templates_[label];
}

Image SignRenderer::make_template(std::size_t label,
                                  std::uint64_t seed) const {
  // One deterministic sub-stream per class.
  stats::Rng rng(seed * 0x9e3779b9ULL + label * 0x85ebca6bULL + 1);
  const auto shape = static_cast<Shape>(label % 4);
  // Base tone of the sign face alternates to add a coarse color-like cue.
  const float face = (label % 2 == 0) ? 0.85F : 0.7F;
  const float border = (label % 3 == 0) ? 0.15F : 0.3F;

  Image tmpl(kTemplateSize, kTemplateSize, 0.0F);
  const double c = (static_cast<double>(kTemplateSize) - 1.0) / 2.0;

  // 5x5 glyph bitmap: the class's distinguishing interior pattern. Coarse
  // cells stay resolvable after downscaling to distant apparent sizes.
  constexpr std::size_t kGlyph = 5;
  std::array<bool, kGlyph * kGlyph> glyph{};
  for (auto& bit : glyph) bit = rng.bernoulli(0.5);
  // Guarantee at least 1/3 on-bits so no glyph is blank.
  std::size_t on = 0;
  for (const bool bit : glyph) on += bit ? 1 : 0;
  while (on < kGlyph * kGlyph / 3) {
    const std::size_t i = rng.uniform_index(glyph.size());
    if (!glyph[i]) {
      glyph[i] = true;
      ++on;
    }
  }

  for (std::size_t y = 0; y < kTemplateSize; ++y) {
    for (std::size_t x = 0; x < kTemplateSize; ++x) {
      const double nx = (static_cast<double>(x) - c) / c;
      const double ny = (static_cast<double>(y) - c) / c;
      if (!inside_shape(shape, nx, ny)) continue;  // transparent outside
      // Border ring: points near the silhouette boundary.
      const bool in_border = !inside_shape(shape, nx * 1.18, ny * 1.18);
      if (in_border) {
        tmpl(x, y) = border;
        continue;
      }
      // Map the interior into glyph cells.
      const double gx = (nx * 0.62 + 0.5) * static_cast<double>(kGlyph);
      const double gy = (ny * 0.62 + 0.5) * static_cast<double>(kGlyph);
      const auto cx = static_cast<std::size_t>(
          std::clamp(gx, 0.0, static_cast<double>(kGlyph) - 1.0));
      const auto cy = static_cast<std::size_t>(
          std::clamp(gy, 0.0, static_cast<double>(kGlyph) - 1.0));
      tmpl(x, y) = glyph[cy * kGlyph + cx] ? 0.1F : face;
    }
  }
  return tmpl;
}

Image SignRenderer::render(std::size_t label, double apparent_px,
                           stats::Rng& rng) const {
  if (label >= templates_.size()) {
    throw std::out_of_range("SignRenderer: label out of range");
  }
  const double size =
      std::clamp(apparent_px, 6.0, static_cast<double>(kFrameSize));
  const auto px = static_cast<std::size_t>(std::lround(size));

  // Road-scene background: vertical luminance gradient plus clutter noise.
  Image frame(kFrameSize, kFrameSize);
  for (std::size_t y = 0; y < kFrameSize; ++y) {
    const float base =
        0.55F - 0.25F * static_cast<float>(y) / static_cast<float>(kFrameSize);
    for (std::size_t x = 0; x < kFrameSize; ++x) {
      frame(x, y) = std::clamp(
          base + static_cast<float>(rng.normal(0.0, 0.06)), 0.0F, 1.0F);
    }
  }

  // Downscale the template to the apparent size (information loss with
  // distance) and paste it near the frame center with jitter.
  const Image scaled = resize_bilinear(templates_[label], px, px);
  const auto max_off = static_cast<std::ptrdiff_t>(kFrameSize - px);
  const auto jitter = [&](std::ptrdiff_t center) {
    const std::ptrdiff_t j = rng.uniform_int(-1, 1);
    return std::clamp<std::ptrdiff_t>(center + j, 0, max_off);
  };
  const std::ptrdiff_t ox = jitter(max_off / 2);
  const std::ptrdiff_t oy = jitter(max_off / 2);
  for (std::size_t y = 0; y < px; ++y) {
    for (std::size_t x = 0; x < px; ++x) {
      const float v = scaled(x, y);
      if (v <= 0.0F) continue;  // transparent background of the template
      frame(static_cast<std::size_t>(ox) + x,
            static_cast<std::size_t>(oy) + y) = v;
    }
  }

  // Sensor noise.
  for (float& p : frame.pixels()) {
    p = std::clamp(p + static_cast<float>(rng.normal(0.0, 0.02)), 0.0F, 1.0F);
  }
  return frame;
}

}  // namespace tauw::imaging
