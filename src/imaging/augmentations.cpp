#include "imaging/augmentations.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tauw::imaging {

namespace {

double clamp_intensity(double intensity) {
  if (!(intensity >= 0.0)) return 0.0;
  return std::min(intensity, 1.0);
}

void stamp_blob(Image& img, double cx, double cy, double radius, float value,
                float opacity) {
  const auto x0 = static_cast<std::ptrdiff_t>(std::floor(cx - radius));
  const auto x1 = static_cast<std::ptrdiff_t>(std::ceil(cx + radius));
  const auto y0 = static_cast<std::ptrdiff_t>(std::floor(cy - radius));
  const auto y1 = static_cast<std::ptrdiff_t>(std::ceil(cy + radius));
  for (std::ptrdiff_t y = y0; y <= y1; ++y) {
    if (y < 0 || y >= static_cast<std::ptrdiff_t>(img.height())) continue;
    for (std::ptrdiff_t x = x0; x <= x1; ++x) {
      if (x < 0 || x >= static_cast<std::ptrdiff_t>(img.width())) continue;
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      if (dx * dx + dy * dy > radius * radius) continue;
      float& p = img(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
      p = std::clamp((1.0F - opacity) * p + opacity * value, 0.0F, 1.0F);
    }
  }
}

}  // namespace

Image apply_rain(const Image& src, double intensity, stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  Image out = src;
  const auto streaks = static_cast<std::size_t>(
      std::lround(t * 0.45 * static_cast<double>(src.width())));
  for (std::size_t s = 0; s < streaks; ++s) {
    const std::size_t x = rng.uniform_index(src.width());
    const std::size_t y0 = rng.uniform_index(src.height());
    const std::size_t len =
        2 + rng.uniform_index(std::max<std::size_t>(src.height() / 2, 1));
    const auto opacity = static_cast<float>(0.25 + 0.45 * t);
    for (std::size_t k = 0; k < len && y0 + k < src.height(); ++k) {
      float& p = out(x, y0 + k);
      p = std::clamp((1.0F - opacity) * p + opacity * 0.9F, 0.0F, 1.0F);
    }
  }
  // Wet-air wash-out.
  return affine_intensity(out, static_cast<float>(1.0 - 0.25 * t),
                          static_cast<float>(0.12 * t));
}

Image apply_darkness(const Image& src, double intensity, stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  (void)rng;  // deterministic deficit
  const auto gain = static_cast<float>(1.0 - 0.7 * t);
  const auto bias = static_cast<float>(-0.04 * t);
  return affine_intensity(src, gain, bias);
}

Image apply_haze(const Image& src, double intensity, stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  (void)rng;
  const Image veil(src.width(), src.height(), 0.85F);
  Image out = blend(src, veil, static_cast<float>(0.65 * t));
  if (t > 0.5) out = box_blur(out, 1);
  return out;
}

Image apply_natural_backlight(const Image& src, double intensity,
                              stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  // Low sun from a random upper corner: diagonal additive glare.
  const bool from_left = rng.bernoulli(0.5);
  Image out = src;
  const double w = static_cast<double>(src.width());
  const double h = static_cast<double>(src.height());
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      const double fx = from_left ? (w - static_cast<double>(x)) / w
                                  : static_cast<double>(x) / w;
      const double fy = (h - static_cast<double>(y)) / h;
      const double glare = 0.85 * t * std::pow(0.5 * (fx + fy), 2.0);
      float& p = out(x, y);
      p = std::clamp(p + static_cast<float>(glare), 0.0F, 1.0F);
    }
  }
  // Strong backlight also flattens contrast.
  return affine_intensity(out, static_cast<float>(1.0 - 0.3 * t),
                          static_cast<float>(0.2 * t));
}

Image apply_artificial_backlight(const Image& src, double intensity,
                                 stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  Image out = src;
  const double cx = rng.uniform(0.2, 0.8) * static_cast<double>(src.width());
  const double cy = rng.uniform(0.2, 0.8) * static_cast<double>(src.height());
  const double sigma = (0.15 + 0.3 * t) * static_cast<double>(src.width());
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double bloom =
          1.1 * t * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
      float& p = out(x, y);
      p = std::clamp(p + static_cast<float>(bloom), 0.0F, 1.0F);
    }
  }
  return out;
}

Image apply_dirt_on_sign(const Image& src, double intensity, stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  Image out = src;
  // Blobs restricted to the central region where the sign is pasted.
  const auto blobs = static_cast<std::size_t>(std::lround(1.0 + 6.0 * t));
  const double w = static_cast<double>(src.width());
  const double h = static_cast<double>(src.height());
  for (std::size_t b = 0; b < blobs; ++b) {
    const double cx = rng.uniform(0.3, 0.7) * w;
    const double cy = rng.uniform(0.3, 0.7) * h;
    const double radius = rng.uniform(0.03, 0.05 + 0.09 * t) * w;
    stamp_blob(out, cx, cy, radius, 0.22F,
               static_cast<float>(0.5 + 0.5 * t));
  }
  return out;
}

Image apply_dirt_on_lens(const Image& src, double intensity, stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  Image out = src;
  const auto blobs = static_cast<std::size_t>(std::lround(1.0 + 5.0 * t));
  const double w = static_cast<double>(src.width());
  const double h = static_cast<double>(src.height());
  for (std::size_t b = 0; b < blobs; ++b) {
    const double cx = rng.uniform(0.0, 1.0) * w;
    const double cy = rng.uniform(0.0, 1.0) * h;
    const double radius = rng.uniform(0.05, 0.08 + 0.12 * t) * w;
    // Out-of-focus dirt: darker but soft.
    stamp_blob(out, cx, cy, radius, 0.3F, static_cast<float>(0.35 + 0.4 * t));
  }
  return box_blur(out, t > 0.6 ? 1 : 0);
}

Image apply_steamed_up_lens(const Image& src, double intensity,
                            stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  (void)rng;
  const auto radius = static_cast<std::size_t>(std::lround(1.0 + 2.0 * t));
  Image out = box_blur(src, radius);
  return affine_intensity(out, static_cast<float>(1.0 - 0.2 * t),
                          static_cast<float>(0.18 * t));
}

Image apply_motion_blur(const Image& src, double intensity, stats::Rng& rng) {
  const double t = clamp_intensity(intensity);
  if (t == 0.0) return src;
  const auto length = static_cast<std::size_t>(std::lround(
      1.0 + t * 0.33 * static_cast<double>(src.width())));
  // Mostly horizontal (vehicle motion) with a small random vertical component.
  const double dy = rng.uniform(-0.25, 0.25);
  return directional_blur(src, 1.0, dy, length);
}

Image apply_deficit(const Image& src, Deficit deficit, double intensity,
                    stats::Rng& rng) {
  switch (deficit) {
    case Deficit::kRain: return apply_rain(src, intensity, rng);
    case Deficit::kDarkness: return apply_darkness(src, intensity, rng);
    case Deficit::kHaze: return apply_haze(src, intensity, rng);
    case Deficit::kNaturalBacklight:
      return apply_natural_backlight(src, intensity, rng);
    case Deficit::kArtificialBacklight:
      return apply_artificial_backlight(src, intensity, rng);
    case Deficit::kDirtOnSign: return apply_dirt_on_sign(src, intensity, rng);
    case Deficit::kDirtOnLens: return apply_dirt_on_lens(src, intensity, rng);
    case Deficit::kSteamedUpLens:
      return apply_steamed_up_lens(src, intensity, rng);
    case Deficit::kMotionBlur: return apply_motion_blur(src, intensity, rng);
  }
  throw std::invalid_argument("unknown deficit");
}

Image apply_all(const Image& src, const DeficitVector& intensities,
                stats::Rng& rng) {
  Image out = src;
  for (const Deficit d : all_deficits()) {
    const double t = intensities[static_cast<std::size_t>(d)];
    if (t > 0.0) out = apply_deficit(out, d, t, rng);
  }
  return out;
}

}  // namespace tauw::imaging
