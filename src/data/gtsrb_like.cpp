#include "data/gtsrb_like.hpp"

#include <algorithm>
#include <stdexcept>

#include "imaging/augmentations.hpp"

namespace tauw::data {

GtsrbLikeGenerator::GtsrbLikeGenerator(const DataConfig& config,
                                       const imaging::SignRenderer& renderer,
                                       const sim::WeatherModel& weather,
                                       const sim::RoadNetwork& roads)
    : config_(config), renderer_(&renderer), sampler_(weather, roads) {
  if (config.train_series + config.calib_series + config.test_series >
      config.num_series) {
    throw std::invalid_argument("split sizes exceed number of series");
  }
  if (config.subsample_length == 0 ||
      config.subsample_length > config.frames_per_series) {
    throw std::invalid_argument("invalid subsample length");
  }
  stats::Rng rng(config.seed);
  specs_.reserve(config.num_series);
  const sim::ApproachParams base;
  for (std::size_t i = 0; i < config.num_series; ++i) {
    SeriesSpec spec;
    spec.label = rng.uniform_index(renderer.num_classes());
    spec.approach = sim::ApproachTrajectory::randomized(base, rng);
    spec.approach.num_frames = config.frames_per_series;
    spec.seed = rng();
    specs_.push_back(spec);
  }
}

SplitIndices GtsrbLikeGenerator::split() const {
  stats::Rng rng(config_.seed ^ 0xabcdef1234567890ULL);
  auto perm = rng.permutation(specs_.size());
  SplitIndices idx;
  std::size_t k = 0;
  idx.train.assign(perm.begin() + k, perm.begin() + k + config_.train_series);
  k += config_.train_series;
  idx.calib.assign(perm.begin() + k, perm.begin() + k + config_.calib_series);
  k += config_.calib_series;
  idx.test.assign(perm.begin() + k, perm.begin() + k + config_.test_series);
  return idx;
}

FrameRecord GtsrbLikeGenerator::make_record(
    const SeriesSpec& spec, std::size_t frame_index,
    const imaging::DeficitVector& intensities, stats::Rng& rng) const {
  const sim::ApproachTrajectory trajectory(spec.approach);
  FrameRecord rec;
  rec.label = spec.label;
  rec.apparent_px = trajectory.apparent_px(frame_index);
  rec.true_intensities = intensities;

  imaging::Image frame = renderer_->render(spec.label, rec.apparent_px, rng);
  frame = imaging::apply_all(frame, intensities, rng);
  rec.features = ml::extract_features(frame, config_.feature_config);

  // Runtime (sensor) view of the quality factors.
  for (std::size_t d = 0; d < imaging::kNumDeficits; ++d) {
    rec.observed_intensities[d] = std::clamp(
        intensities[d] + rng.normal(0.0, config_.qf_observation_noise), 0.0,
        1.0);
  }
  rec.observed_apparent_px =
      std::max(1.0, rec.apparent_px * (1.0 + rng.normal(0.0, 0.05)));
  return rec;
}

FrameDataset GtsrbLikeGenerator::make_training_frames(
    const std::vector<std::size_t>& series) const {
  FrameDataset out;
  for (const std::size_t s : series) {
    const SeriesSpec& spec = specs_.at(s);
    stats::Rng rng(spec.seed ^ 0x51ed270b1ULL);
    for (std::size_t f = 0; f < config_.frames_per_series;
         f += config_.train_frame_stride) {
      // Clean frame.
      out.records.push_back(make_record(spec, f, imaging::DeficitVector{}, rng));
      // Single-deficit augmentations at the three intensity levels.
      for (const imaging::Deficit d : imaging::all_deficits()) {
        for (const auto level :
             {imaging::IntensityLevel::kLow, imaging::IntensityLevel::kMedium,
              imaging::IntensityLevel::kHigh}) {
          imaging::DeficitVector v{};
          v[static_cast<std::size_t>(d)] = imaging::intensity_value(level);
          out.records.push_back(make_record(spec, f, v, rng));
        }
      }
    }
  }
  return out;
}

SeriesDataset GtsrbLikeGenerator::make_eval_series(
    const std::vector<std::size_t>& series, std::uint64_t salt) const {
  SeriesDataset out;
  out.series.reserve(series.size() * config_.eval_replicas);
  for (const std::size_t s : series) {
    const SeriesSpec& spec = specs_.at(s);
    for (std::size_t rep = 0; rep < config_.eval_replicas; ++rep) {
      stats::Rng rng(spec.seed ^ (salt + 0x9e3779b97f4a7c15ULL * (rep + 1)));
      RecordSeries rs;
      rs.label = spec.label;
      rs.setting = sampler_.sample(rng);

      // Uniformly random length-10 window within the full approach, to avoid
      // distance bias (paper, Section IV.B.2).
      const std::size_t max_start =
          config_.frames_per_series - config_.subsample_length;
      const std::size_t start = rng.uniform_index(max_start + 1);
      rs.frames.reserve(config_.subsample_length);
      for (std::size_t k = 0; k < config_.subsample_length; ++k) {
        const imaging::DeficitVector frame_intensities =
            sim::SituationSampler::frame_intensities(rs.setting, rng);
        rs.frames.push_back(
            make_record(spec, start + k, frame_intensities, rng));
      }
      out.series.push_back(std::move(rs));
    }
  }
  return out;
}

}  // namespace tauw::data
