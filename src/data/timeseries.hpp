#pragma once
// Dataset containers for the TSR study.
//
// The pipeline renders each frame, extracts the DDM feature vector and the
// quality-factor metadata, then discards the pixels - records keep what the
// DDM and the wrappers need. `observed_intensities` model the runtime view
// of the situation (e.g. a rain sensor): the true augmentation intensities
// perturbed with observation noise at generation time, so quality factors
// are realistic sensor readings rather than oracle values.

#include <cstddef>
#include <vector>

#include "imaging/deficit.hpp"
#include "sim/scenario.hpp"
#include "sim/situation.hpp"

namespace tauw::data {

/// One rendered, augmented frame reduced to features + metadata.
struct FrameRecord {
  std::size_t label = 0;  ///< ground-truth sign class
  double apparent_px = 0.0;
  imaging::DeficitVector true_intensities{};
  imaging::DeficitVector observed_intensities{};
  double observed_apparent_px = 0.0;
  std::vector<float> features;  ///< DDM input features
};

/// A flat set of frames (DDM / stateless-QIM training).
struct FrameDataset {
  std::vector<FrameRecord> records;
  std::size_t size() const noexcept { return records.size(); }
};

/// One evaluation series: consecutive frames of the same physical sign under
/// one situation setting.
struct RecordSeries {
  std::size_t label = 0;
  sim::SituationSetting setting;
  std::vector<FrameRecord> frames;
};

/// A set of evaluation series (calibration / test).
struct SeriesDataset {
  std::vector<RecordSeries> series;
  std::size_t num_series() const noexcept { return series.size(); }
  std::size_t num_frames() const noexcept {
    std::size_t n = 0;
    for (const auto& s : series) n += s.frames.size();
    return n;
  }
};

/// Static description of one physical sign and its approach geometry.
struct SeriesSpec {
  std::size_t label = 0;
  sim::ApproachParams approach;
  std::uint64_t seed = 0;  ///< per-series deterministic sub-stream
};

}  // namespace tauw::data
