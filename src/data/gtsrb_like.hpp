#pragma once
// GTSRB-like dataset generation: series specs, splits, and the augmentation
// pipeline producing DDM training data and evaluation series.
//
// Mirrors the paper's data preparation (Section IV.B.2):
//  * 1307 series of a car approaching a physical sign (29-30 frames there;
//    frame count configurable here), 43 classes;
//  * random split into 522 training / 392 calibration / 392 test series;
//  * training frames augmented per deficit at low/medium/high intensity
//    (single-deficit augmentation), plus the clean frame;
//  * calibration/test series augmented with random realistic situation
//    settings (multi-deficit, propagated through the series; motion blur and
//    artificial backlight vary frame-by-frame), several replicas per series;
//  * evaluation series subsampled to length-10 windows with uniformly random
//    start, to avoid distance bias.

#include <cstdint>

#include "data/timeseries.hpp"
#include "imaging/sign_renderer.hpp"
#include "ml/features.hpp"
#include "sim/road_network.hpp"
#include "sim/situation.hpp"
#include "sim/weather.hpp"
#include "stats/rng.hpp"

namespace tauw::data {

struct DataConfig {
  std::size_t num_series = 1307;
  std::size_t frames_per_series = 30;
  std::size_t train_series = 522;
  std::size_t calib_series = 392;
  std::size_t test_series = 392;

  /// Use every n-th frame of a training series for DDM training (scale knob;
  /// 1 reproduces the paper's full per-frame augmentation).
  std::size_t train_frame_stride = 6;
  /// Augmentation replicas per evaluation series (paper: 28).
  std::size_t eval_replicas = 4;
  /// Subsampled evaluation window length (paper: 10).
  std::size_t subsample_length = 10;

  ml::FeatureConfig feature_config{};
  /// Observation noise applied to intensities when deriving the runtime
  /// quality-factor view.
  double qf_observation_noise = 0.05;

  std::uint64_t seed = 42;
};

/// The three series-index sets of the random split.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> calib;
  std::vector<std::size_t> test;
};

class GtsrbLikeGenerator {
 public:
  GtsrbLikeGenerator(const DataConfig& config,
                     const imaging::SignRenderer& renderer,
                     const sim::WeatherModel& weather,
                     const sim::RoadNetwork& roads);

  const DataConfig& config() const noexcept { return config_; }

  /// All series specs (deterministic given config.seed).
  const std::vector<SeriesSpec>& specs() const noexcept { return specs_; }

  /// Random train/calibration/test split of the spec indices.
  SplitIndices split() const;

  /// DDM training frames: clean + single-deficit augmentations at the three
  /// intensity levels for each selected frame of each training series.
  FrameDataset make_training_frames(const std::vector<std::size_t>& series) const;

  /// Evaluation series with random situation settings, `eval_replicas`
  /// replicas per spec, subsampled to `subsample_length`.
  SeriesDataset make_eval_series(const std::vector<std::size_t>& series,
                                 std::uint64_t salt) const;

 private:
  FrameRecord make_record(const SeriesSpec& spec, std::size_t frame_index,
                          const imaging::DeficitVector& intensities,
                          stats::Rng& rng) const;

  DataConfig config_;
  const imaging::SignRenderer* renderer_;
  sim::SituationSampler sampler_;
  std::vector<SeriesSpec> specs_;
};

}  // namespace tauw::data
