#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tauw::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty span");
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  return rs.variance();
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile of empty span");
  if (!(q >= 0.0) || !(q <= 1.0)) {
    throw std::invalid_argument("quantile level must be in [0,1]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace tauw::stats
