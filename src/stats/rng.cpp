#include "stats/rng.hpp"

#include <cmath>
#include <numbers>

namespace tauw::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // A state of all zeros is the one fixed point of xoshiro; SplitMix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return uniform_index(weights.empty() ? 1 : weights.size());
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

Rng Rng::split() noexcept {
  return Rng((*this)() ^ 0xd2b74407b1ce6e93ULL);
}

}  // namespace tauw::stats
