#pragma once
// Brier score and its Murphy (1973) vector partition.
//
// The paper evaluates uncertainty estimators with the Brier score
//   bs = (1/N) sum_i (u_i - e_i)^2,
// where u_i is the predicted uncertainty (probability of the failure mode)
// and e_i in {0,1} indicates whether the failure actually occurred. Murphy's
// decomposition splits it as
//   bs = variance - resolution + unreliability
// with
//   variance      = ebar (1 - ebar)                      (DDM error rate only)
//   resolution    = (1/N) sum_k n_k (ebar_k - ebar)^2    (between-bin spread)
//   unreliability = (1/N) sum_k n_k (u_k - ebar_k)^2     (calibration error)
// where cases are grouped into bins k of identical forecasts u_k (decision
// trees emit finitely many distinct uncertainties, so exact grouping is
// natural), ebar_k is the observed failure rate in bin k, and ebar the overall
// failure rate.
//
// Following the paper we also report
//   unspecificity  = variance - resolution
//   overconfidence = the portion of unreliability contributed by bins whose
//                    predicted uncertainty *underestimates* the observed
//                    failure rate (u_k < ebar_k),
//   underconfidence = unreliability - overconfidence.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tauw::stats {

/// One forecast bin in the Murphy decomposition.
struct ForecastBin {
  double forecast = 0.0;       ///< predicted uncertainty shared by the bin
  std::size_t count = 0;       ///< number of cases in the bin
  double observed_rate = 0.0;  ///< observed failure frequency in the bin
};

/// Result of the Brier decomposition.
struct BrierDecomposition {
  double brier = 0.0;
  double variance = 0.0;
  double resolution = 0.0;
  double unspecificity = 0.0;  ///< variance - resolution
  double unreliability = 0.0;
  double overconfidence = 0.0;   ///< unreliability from bins with u_k < ebar_k
  double underconfidence = 0.0;  ///< unreliability - overconfidence
  double base_rate = 0.0;        ///< overall observed failure rate ebar
  std::vector<ForecastBin> bins;
};

/// Plain Brier score without decomposition.
/// `forecasts[i]` is the predicted failure probability, `failures[i]` (0/1) whether
/// the failure occurred. The spans must have equal, non-zero length.
double brier_score(std::span<const double> forecasts,
                   std::span<const std::uint8_t> failures);

/// Full Murphy decomposition with exact grouping by forecast value.
/// Forecast values closer than `tolerance` are merged into one bin.
BrierDecomposition brier_decomposition(std::span<const double> forecasts,
                                       std::span<const std::uint8_t> failures,
                                       double tolerance = 1e-12);

}  // namespace tauw::stats
