#pragma once
// Exact (Clopper-Pearson) binomial confidence bounds.
//
// The uncertainty wrapper framework [Klaes & Sembach 2019] attaches to each
// leaf of the quality impact model a *dependable* uncertainty: an upper
// confidence bound on the leaf's true error probability, computed from the
// errors observed on calibration data routed to that leaf. The paper uses a
// confidence level of 0.999.

#include <cstddef>

namespace tauw::stats {

/// One-sided upper Clopper-Pearson bound on a binomial proportion.
///
/// Given `errors` failures in `trials` Bernoulli trials, returns the smallest
/// p_hi such that P(X <= errors | p = p_hi) <= 1 - confidence; i.e. with the
/// requested confidence the true failure probability does not exceed the
/// returned value. For errors == trials the bound is 1.
double clopper_pearson_upper(std::size_t errors, std::size_t trials,
                             double confidence);

/// One-sided lower Clopper-Pearson bound (symmetric counterpart).
double clopper_pearson_lower(std::size_t errors, std::size_t trials,
                             double confidence);

/// Two-sided Clopper-Pearson interval at the given confidence level.
struct Interval {
  double lower = 0.0;
  double upper = 1.0;
};
Interval clopper_pearson_interval(std::size_t errors, std::size_t trials,
                                  double confidence);

/// Wilson score upper bound - a cheaper, slightly less conservative
/// alternative offered for ablation studies.
double wilson_upper(std::size_t errors, std::size_t trials, double confidence);

}  // namespace tauw::stats
