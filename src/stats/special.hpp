#pragma once
// Special functions needed for exact binomial confidence bounds.
//
// The uncertainty wrapper's per-leaf guarantees are Clopper-Pearson bounds,
// which reduce to quantiles of the Beta distribution. We implement the
// regularized incomplete beta function via the standard Lentz continued
// fraction and invert it with a guarded Newton/bisection hybrid.

namespace tauw::stats {

/// Natural log of the Beta function, ln B(a, b), for a, b > 0.
double log_beta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0, x in [0, 1].
/// This equals the CDF of a Beta(a, b) random variable evaluated at x.
double incomplete_beta(double a, double b, double x);

/// Inverse of the regularized incomplete beta function: returns x such that
/// incomplete_beta(a, b, x) == p, for p in [0, 1].
double incomplete_beta_inv(double a, double b, double p);

/// CDF of the standard normal distribution.
double normal_cdf(double z);

/// Inverse CDF (quantile) of the standard normal distribution, p in (0, 1).
/// Acklam's rational approximation refined with one Halley step.
double normal_quantile(double p);

}  // namespace tauw::stats
