#include "stats/brier.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tauw::stats {

namespace {

void check_inputs(std::span<const double> forecasts,
                  std::span<const std::uint8_t> failures) {
  if (forecasts.size() != failures.size()) {
    throw std::invalid_argument("forecasts and failures must be equal length");
  }
  if (forecasts.empty()) {
    throw std::invalid_argument("Brier score of an empty sample is undefined");
  }
}

}  // namespace

double brier_score(std::span<const double> forecasts,
                   std::span<const std::uint8_t> failures) {
  check_inputs(forecasts, failures);
  double acc = 0.0;
  for (std::size_t i = 0; i < forecasts.size(); ++i) {
    const double e = failures[i] ? 1.0 : 0.0;
    const double d = forecasts[i] - e;
    acc += d * d;
  }
  return acc / static_cast<double>(forecasts.size());
}

BrierDecomposition brier_decomposition(std::span<const double> forecasts,
                                       std::span<const std::uint8_t> failures,
                                       double tolerance) {
  check_inputs(forecasts, failures);
  const std::size_t n = forecasts.size();

  // Sort case indices by forecast value, then sweep to form bins of
  // (near-)identical forecasts.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return forecasts[a] < forecasts[b];
  });

  BrierDecomposition out;
  std::size_t i = 0;
  while (i < n) {
    const double bin_value = forecasts[order[i]];
    std::size_t count = 0;
    std::size_t fails = 0;
    double forecast_sum = 0.0;
    while (i < n && forecasts[order[i]] - bin_value <= tolerance) {
      forecast_sum += forecasts[order[i]];
      fails += failures[order[i]] ? 1 : 0;
      ++count;
      ++i;
    }
    ForecastBin bin;
    bin.forecast = forecast_sum / static_cast<double>(count);
    bin.count = count;
    bin.observed_rate = static_cast<double>(fails) / static_cast<double>(count);
    out.bins.push_back(bin);
  }

  std::size_t total_fails = 0;
  for (std::size_t j = 0; j < n; ++j) total_fails += failures[j] ? 1 : 0;
  const double ebar = static_cast<double>(total_fails) / static_cast<double>(n);

  out.base_rate = ebar;
  out.variance = ebar * (1.0 - ebar);
  for (const ForecastBin& bin : out.bins) {
    const double w = static_cast<double>(bin.count) / static_cast<double>(n);
    const double res_term = bin.observed_rate - ebar;
    const double rel_term = bin.forecast - bin.observed_rate;
    out.resolution += w * res_term * res_term;
    const double rel_contrib = w * rel_term * rel_term;
    out.unreliability += rel_contrib;
    if (bin.forecast < bin.observed_rate) {
      out.overconfidence += rel_contrib;
    }
  }
  out.underconfidence = out.unreliability - out.overconfidence;
  out.unspecificity = out.variance - out.resolution;
  out.brier = brier_score(forecasts, failures);
  return out;
}

}  // namespace tauw::stats
