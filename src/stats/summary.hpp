#pragma once
// Summary statistics helpers shared across the library.

#include <cstddef>
#include <span>

namespace tauw::stats {

/// Running mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy of the input.
double quantile(std::span<const double> xs, double q);

}  // namespace tauw::stats
