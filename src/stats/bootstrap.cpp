#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/summary.hpp"

namespace tauw::stats {

namespace {

BootstrapInterval percentile_interval(std::vector<double>& statistics,
                                      double point, double confidence) {
  std::sort(statistics.begin(), statistics.end());
  const double alpha = (1.0 - confidence) / 2.0;
  BootstrapInterval interval;
  interval.point = point;
  interval.lower = quantile(statistics, alpha);
  interval.upper = quantile(statistics, 1.0 - alpha);
  return interval;
}

}  // namespace

BootstrapInterval bootstrap_mean_ci(std::span<const double> values,
                                    double confidence,
                                    std::size_t resamples,
                                    std::uint64_t seed) {
  if (values.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0) || resamples == 0) {
    throw std::invalid_argument("bootstrap_mean_ci: bad parameters");
  }
  Rng rng(seed);
  const std::size_t n = values.size();
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += values[rng.uniform_index(n)];
    }
    stats.push_back(acc / static_cast<double>(n));
  }
  return percentile_interval(stats, mean(values), confidence);
}

BootstrapInterval bootstrap_paired_diff_ci(std::span<const double> a,
                                           std::span<const double> b,
                                           double confidence,
                                           std::size_t resamples,
                                           std::uint64_t seed) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("bootstrap_paired_diff_ci: length mismatch");
  }
  std::vector<double> diffs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  return bootstrap_mean_ci(diffs, confidence, resamples, seed);
}

}  // namespace tauw::stats
