#include "stats/special.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace tauw::stats {

double log_beta(double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("log_beta requires a, b > 0");
  }
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

namespace {

// Continued fraction for the incomplete beta function (Lentz's algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta requires a, b > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front =
      a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly in its region of fast convergence and
  // the symmetry relation elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - std::exp(b * std::log1p(-x) + a * std::log(x) - log_beta(a, b)) *
                   betacf(b, a, 1.0 - x) / b;
}

double incomplete_beta_inv(double a, double b, double p) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta_inv requires a, b > 0");
  }
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  // Initial guess: mean of the Beta distribution.
  double x = a / (a + b);
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double f = incomplete_beta(a, b, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the Beta pdf as derivative.
    const double log_pdf =
        (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta(a, b);
    const double pdf = std::exp(log_pdf);
    double next = x;
    if (pdf > 0.0 && std::isfinite(pdf)) {
      next = x - f / pdf;
    }
    if (!(next > lo && next < hi)) {
      next = 0.5 * (lo + hi);  // fall back to bisection
    }
    if (std::fabs(next - x) < 1e-14) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("normal_quantile requires p in (0,1)");
  }
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace tauw::stats
