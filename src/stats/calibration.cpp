#include "stats/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tauw::stats {

std::vector<CalibrationPoint> calibration_curve(
    std::span<const double> uncertainties, std::span<const std::uint8_t> failures,
    std::size_t num_bins) {
  if (uncertainties.size() != failures.size()) {
    throw std::invalid_argument("inputs must be equal length");
  }
  if (uncertainties.empty() || num_bins == 0) {
    throw std::invalid_argument("calibration curve needs data and bins");
  }
  const std::size_t n = uncertainties.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // Sort ascending by certainty = 1 - u, i.e. descending by u.
    return uncertainties[a] > uncertainties[b];
  });

  std::vector<CalibrationPoint> curve;
  curve.reserve(num_bins);
  const std::size_t bins = std::min(num_bins, n);
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t lo = b * n / bins;
    const std::size_t hi = (b + 1) * n / bins;
    if (lo >= hi) continue;
    CalibrationPoint pt;
    double certainty_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t i = order[k];
      certainty_sum += 1.0 - uncertainties[i];
      correct += failures[i] ? 0 : 1;
    }
    pt.count = hi - lo;
    pt.mean_predicted_certainty =
        certainty_sum / static_cast<double>(pt.count);
    pt.observed_correctness =
        static_cast<double>(correct) / static_cast<double>(pt.count);
    curve.push_back(pt);
  }
  return curve;
}

double expected_calibration_error(std::span<const double> uncertainties,
                                  std::span<const std::uint8_t> failures,
                                  std::size_t num_bins) {
  const auto curve = calibration_curve(uncertainties, failures, num_bins);
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& pt : curve) {
    total += static_cast<double>(pt.count) *
             std::fabs(pt.mean_predicted_certainty - pt.observed_correctness);
    n += pt.count;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double overconfident_bin_fraction(std::span<const double> uncertainties,
                                  std::span<const std::uint8_t> failures,
                                  std::size_t num_bins, double slack) {
  const auto curve = calibration_curve(uncertainties, failures, num_bins);
  if (curve.empty()) return 0.0;
  std::size_t over = 0;
  for (const auto& pt : curve) {
    if (pt.mean_predicted_certainty > pt.observed_correctness + slack) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(curve.size());
}

}  // namespace tauw::stats
