#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tauw::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram requires lo < hi and bins > 0");
  }
}

void Histogram::add(double value) noexcept {
  const double clamped = std::clamp(value, lo_, hi_);
  const double rel = (clamped - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(rel * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (const double v : values) add(v);
}

double Histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("bin index");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("bin index");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin + 1);
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument(
        "Histogram::merge requires identical lo/hi/bins");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, total]; the value below which a q-fraction of the mass
  // lies, with mass spread uniformly over each bin.
  const double rank = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto c = static_cast<double>(counts_[b]);
    if (c == 0.0) continue;
    if (cumulative + c >= rank) {
      // q == 0 (rank 0) resolves here to the first non-empty bin's lower
      // edge; interior ranks interpolate linearly inside the bin.
      const double frac = std::clamp((rank - cumulative) / c, 0.0, 1.0);
      return bin_lower(b) + frac * (bin_upper(b) - bin_lower(b));
    }
    cumulative += c;
  }
  // Numerically possible only when rank exceeds the accumulated total by
  // rounding: the last non-empty bin's upper edge.
  for (std::size_t b = counts_.size(); b-- > 0;) {
    if (counts_[b] > 0) return bin_upper(b);
  }
  return hi_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::size_t Histogram::mode_bin() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) best = i;
  }
  return best;
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  std::size_t max_count = 1;
  for (const std::size_t c : counts_) max_count = std::max(max_count, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar_len = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[b]) /
                     static_cast<double>(max_count) *
                     static_cast<double>(width)));
    os.setf(std::ios::fixed);
    os.precision(4);
    os << "[" << bin_lower(b) << ", " << bin_upper(b) << ") "
       << std::string(bar_len, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      log_((lo > 0.0 && lo < hi && bins > 0) ? std::log(lo) : 0.0,
           (lo > 0.0 && lo < hi && bins > 0) ? std::log(hi) : 1.0, bins) {
  if (!(lo > 0.0) || !(lo < hi)) {
    throw std::invalid_argument("LogHistogram requires 0 < lo < hi");
  }
}

void LogHistogram::add(double value) noexcept {
  log_.add(std::log(std::clamp(value, lo_, hi_)));
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_) {
    throw std::invalid_argument(
        "LogHistogram::merge requires identical lo/hi/bins");
  }
  log_.merge(other.log_);
}

double LogHistogram::quantile(double q) const noexcept {
  if (log_.total() == 0) return lo_;
  // Linear interpolation in log-space = geometric in the value domain.
  return std::exp(log_.quantile(q));
}

double LogHistogram::bin_lower(std::size_t bin) const {
  return std::exp(log_.bin_lower(bin));
}

double LogHistogram::bin_upper(std::size_t bin) const {
  return std::exp(log_.bin_upper(bin));
}

std::vector<ValueCount> distinct_value_distribution(
    std::span<const double> values, double tolerance) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<ValueCount> out;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double v = sorted[i];
    std::size_t count = 0;
    double sum = 0.0;
    while (i < sorted.size() && sorted[i] - v <= tolerance) {
      sum += sorted[i];
      ++count;
      ++i;
    }
    ValueCount vc;
    vc.value = sum / static_cast<double>(count);
    vc.count = count;
    vc.fraction = values.empty()
                      ? 0.0
                      : static_cast<double>(count) /
                            static_cast<double>(values.size());
    out.push_back(vc);
  }
  return out;
}

}  // namespace tauw::stats
