#pragma once
// Bootstrap confidence intervals for evaluation metrics.
//
// The paper reports point estimates; when comparing uncertainty models on
// one test set it is good practice to quantify sampling noise. These helpers
// resample cases with replacement and return percentile intervals, e.g. for
// the Brier-score *difference* between two forecasters on the same cases
// (paired, so the interval excludes shared-workload variance).

#include <cstdint>
#include <functional>
#include <span>

#include "stats/rng.hpp"

namespace tauw::stats {

struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the full sample
  double lower = 0.0;
  double upper = 0.0;
};

/// Percentile bootstrap CI for the mean of `values`.
BootstrapInterval bootstrap_mean_ci(std::span<const double> values,
                                    double confidence = 0.95,
                                    std::size_t resamples = 2000,
                                    std::uint64_t seed = 1);

/// Paired bootstrap CI for mean(a_i - b_i). `a` and `b` must be equal-length
/// per-case losses of two models on the same cases.
BootstrapInterval bootstrap_paired_diff_ci(std::span<const double> a,
                                           std::span<const double> b,
                                           double confidence = 0.95,
                                           std::size_t resamples = 2000,
                                           std::uint64_t seed = 1);

}  // namespace tauw::stats
