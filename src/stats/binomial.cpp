#include "stats/binomial.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace tauw::stats {

namespace {

void check_args(std::size_t errors, std::size_t trials, double confidence) {
  if (trials == 0) {
    throw std::invalid_argument("binomial bound requires trials > 0");
  }
  if (errors > trials) {
    throw std::invalid_argument("errors must not exceed trials");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("confidence must be in (0,1)");
  }
}

}  // namespace

double clopper_pearson_upper(std::size_t errors, std::size_t trials,
                             double confidence) {
  check_args(errors, trials, confidence);
  if (errors == trials) return 1.0;
  const auto k = static_cast<double>(errors);
  const auto n = static_cast<double>(trials);
  // Upper bound is the `confidence` quantile of Beta(k + 1, n - k).
  return incomplete_beta_inv(k + 1.0, n - k, confidence);
}

double clopper_pearson_lower(std::size_t errors, std::size_t trials,
                             double confidence) {
  check_args(errors, trials, confidence);
  if (errors == 0) return 0.0;
  const auto k = static_cast<double>(errors);
  const auto n = static_cast<double>(trials);
  // Lower bound is the (1 - confidence) quantile of Beta(k, n - k + 1).
  return incomplete_beta_inv(k, n - k + 1.0, 1.0 - confidence);
}

Interval clopper_pearson_interval(std::size_t errors, std::size_t trials,
                                  double confidence) {
  const double one_sided = 0.5 * (1.0 + confidence);
  return Interval{clopper_pearson_lower(errors, trials, one_sided),
                  clopper_pearson_upper(errors, trials, one_sided)};
}

double wilson_upper(std::size_t errors, std::size_t trials,
                    double confidence) {
  check_args(errors, trials, confidence);
  const double z = normal_quantile(confidence);
  const auto n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(errors) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p_hat + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n));
  double upper = (center + margin) / denom;
  if (upper > 1.0) upper = 1.0;
  return upper;
}

}  // namespace tauw::stats
