#pragma once
// Deterministic pseudo-random number generation for the tauw library.
//
// Every stochastic component in the library takes an explicit `Rng` (or a
// seed) so that studies are reproducible bit-for-bit across runs. The
// generator is xoshiro256++, which is fast, has a 256-bit state, and passes
// BigCrush; it is more than adequate for simulation workloads.

#include <array>
#include <cstdint>
#include <vector>

namespace tauw::stats {

/// xoshiro256++ generator with SplitMix64 seeding.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with standard <random> distributions, although the library ships its
/// own distribution helpers for reproducibility across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Draws an index in [0, weights.size()) proportional to `weights`.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// result is uniform.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel sub-streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tauw::stats
