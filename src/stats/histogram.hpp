#pragma once
// Histograms over predicted uncertainties (paper Fig. 5), latency telemetry
// (serve/), and general use.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tauw::stats {

/// Fixed-width histogram over a closed range [lo, hi].
class Histogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi]. Requires lo < hi and
  /// bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation. Values outside [lo, hi] are clamped into the edge
  /// bins (the uncertainty domain is closed, so clamping is lossless there).
  void add(double value) noexcept;

  /// Adds all values from a span.
  void add_all(std::span<const double> values) noexcept;

  /// Folds another histogram's counts into this one (per-shard telemetry
  /// aggregation). Both histograms must have identical lo/hi/bins; throws
  /// std::invalid_argument otherwise.
  void merge(const Histogram& other);

  std::size_t num_bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }

  /// Lower/upper edge of a bin.
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

  /// Fraction of all observations falling in `bin` (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// The q-quantile (q in [0, 1], clamped) with linear interpolation inside
  /// the containing bin: observations are assumed uniformly spread over
  /// their bin, so quantile(0) is the first non-empty bin's lower edge and
  /// quantile(1) the last non-empty bin's upper edge. An empty histogram
  /// returns lo (the only dependable lower bound it can state).
  double quantile(double q) const noexcept;

  /// Index of the most populated bin (ties resolved to the lowest index).
  std::size_t mode_bin() const noexcept;

  /// Renders a simple fixed-width ASCII bar chart, one line per bin - used by
  /// the figure benches to visualize distributions in terminal output.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Histogram with log-scaled (geometrically spaced) bins over [lo, hi],
/// 0 < lo < hi - constant *relative* resolution across several decades,
/// which is what latency distributions need (microseconds to seconds in one
/// compact, mergeable fixed-size array). Implemented as a linear Histogram
/// over log(value); quantiles interpolate geometrically within a bin.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  /// Adds one observation, clamped into [lo, hi] (non-positive values land
  /// in the first bin).
  void add(double value) noexcept;

  /// Folds another log-histogram in; shapes must match (see Histogram::merge).
  void merge(const LogHistogram& other);

  /// The q-quantile in the value domain (geometric interpolation). An empty
  /// histogram returns lo.
  double quantile(double q) const noexcept;

  std::size_t num_bins() const noexcept { return log_.num_bins(); }
  std::size_t count(std::size_t bin) const { return log_.count(bin); }
  std::size_t total() const noexcept { return log_.total(); }
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  Histogram log_;  ///< bins over [log(lo), log(hi)]
};

/// Convenience: distribution of predicted uncertainties grouped by *distinct*
/// value (trees emit few distinct uncertainties, cf. Fig. 5's discrete bars).
struct ValueCount {
  double value = 0.0;
  std::size_t count = 0;
  double fraction = 0.0;
};
std::vector<ValueCount> distinct_value_distribution(
    std::span<const double> values, double tolerance = 1e-12);

}  // namespace tauw::stats
