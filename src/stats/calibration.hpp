#pragma once
// Calibration diagnostics for probabilistic failure forecasts.
//
// Reproduces the quantile-based calibration plot of the paper's Fig. 6:
// cases are sorted by predicted certainty (1 - u) and partitioned into
// equal-population quantile bins (deciles in the paper); for each bin the
// mean predicted certainty is plotted against the observed correctness rate.
// Points below the diagonal are overconfident, points above underconfident.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tauw::stats {

/// One point of a calibration curve.
struct CalibrationPoint {
  double mean_predicted_certainty = 0.0;  ///< average of 1 - u in the bin
  double observed_correctness = 0.0;      ///< fraction of correct outcomes
  std::size_t count = 0;
};

/// Quantile calibration curve over `num_bins` equal-population bins.
/// `uncertainties[i]` is the predicted failure probability of case i and
/// `failures[i]` whether the failure occurred.
std::vector<CalibrationPoint> calibration_curve(
    std::span<const double> uncertainties, std::span<const std::uint8_t> failures,
    std::size_t num_bins = 10);

/// Expected calibration error: population-weighted mean absolute gap between
/// predicted certainty and observed correctness over the curve's bins.
double expected_calibration_error(std::span<const double> uncertainties,
                                  std::span<const std::uint8_t> failures,
                                  std::size_t num_bins = 10);

/// Fraction of quantile bins that are overconfident (predicted certainty
/// exceeds observed correctness by more than `slack`).
double overconfident_bin_fraction(std::span<const double> uncertainties,
                                  std::span<const std::uint8_t> failures,
                                  std::size_t num_bins = 10,
                                  double slack = 0.0);

}  // namespace tauw::stats
